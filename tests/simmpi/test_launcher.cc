/**
 * @file
 * Launcher model tests: redeployment accounting, attempt limits, and
 * the single-launch wrappers.
 */

#include <gtest/gtest.h>

#include <memory>

#include "src/simmpi/launcher.hh"
#include "src/simmpi/proc.hh"

using namespace match::simmpi;

namespace
{

std::shared_ptr<InjectionPlan>
plan(int iteration, Rank rank)
{
    auto p = std::make_shared<InjectionPlan>();
    p->iteration = iteration;
    p->rank = rank;
    return p;
}

void
loop(Proc &proc, int iters)
{
    for (int i = 0; i < iters; ++i) {
        proc.iterationPoint(i);
        proc.compute(1e7);
        proc.allreduce(1.0);
    }
}

} // namespace

TEST(Launcher, TotalTimeSumsAttemptsAndRedeploy)
{
    JobOptions opts;
    opts.nprocs = 4;
    opts.policy = ErrorPolicy::Fatal;
    opts.injection = plan(3, 2);
    const LaunchReport report =
        launchWithRestart(opts, [](Proc &proc) { loop(proc, 8); });
    ASSERT_EQ(report.attempts, 2);
    const CostModel model;
    // Total = aborted attempt + redeploy + clean attempt; the aborted
    // attempt's makespan must be a positive remainder.
    EXPECT_GT(report.totalTime, model.restartRecovery(4));
    EXPECT_GT(report.totalTime, report.finalResult.makespan);
    const double aborted_makespan = report.totalTime -
                                    model.restartRecovery(4) -
                                    report.finalResult.makespan;
    // The aborted attempt ran part of the loop plus the detection
    // latency before mpirun tore it down.
    EXPECT_GT(aborted_makespan, model.detectionLatency());
    EXPECT_LT(aborted_makespan,
              report.finalResult.makespan + model.detectionLatency());
}

TEST(Launcher, BreakdownAggregatesAcrossAttempts)
{
    JobOptions opts;
    opts.nprocs = 4;
    opts.policy = ErrorPolicy::Fatal;
    opts.injection = plan(5, 1);
    const LaunchReport report =
        launchWithRestart(opts, [](Proc &proc) { loop(proc, 10); });
    // Application time contains the lost work of attempt 1 plus the
    // full re-execution, so it exceeds a clean run's application time.
    Runtime rt;
    JobOptions clean = opts;
    clean.injection = nullptr;
    const JobResult clean_result =
        rt.run(clean, [](Proc &proc) { loop(proc, 10); });
    EXPECT_GT(report.breakdown[static_cast<int>(
                  TimeCategory::Application)],
              clean_result.breakdown[static_cast<int>(
                  TimeCategory::Application)]);
}

TEST(Launcher, LaunchOnceDoesNotRedeploy)
{
    JobOptions opts;
    opts.nprocs = 2;
    const LaunchReport report =
        launchOnce(opts, [](Proc &proc) { loop(proc, 3); });
    EXPECT_EQ(report.attempts, 1);
    EXPECT_FALSE(report.failureFired);
    EXPECT_DOUBLE_EQ(report.totalTime, report.finalResult.makespan);
}

TEST(Launcher, LaunchReinitReportsRecoveries)
{
    JobOptions opts;
    opts.nprocs = 4;
    opts.policy = ErrorPolicy::Reinit;
    opts.injection = plan(4, 3);
    const LaunchReport report = launchReinit(
        opts, [](Proc &proc, ReinitState) { loop(proc, 8); });
    EXPECT_EQ(report.attempts, 1); // online recovery, no redeploy
    EXPECT_EQ(report.finalResult.recoveries, 1);
    EXPECT_TRUE(report.failureFired);
    EXPECT_EQ(report.failedRank, 3);
}

TEST(LauncherDeath, RestartRequiresFatalPolicy)
{
    JobOptions opts;
    opts.nprocs = 2;
    opts.policy = ErrorPolicy::Return;
    EXPECT_DEATH(launchWithRestart(opts, [](Proc &) {}),
                 "MPI_ERRORS_ARE_FATAL");
}

namespace
{

std::shared_ptr<InjectionSchedule>
schedule(std::initializer_list<InjectionEvent> events)
{
    auto s = std::make_shared<InjectionSchedule>();
    s->events = events;
    return s;
}

} // namespace

TEST(Launcher, RestartRecordsEveryFiredFailure)
{
    // Two scheduled crashes → two aborted attempts, and the report
    // must keep BOTH crashed ranks in fire order (a last-one-wins
    // scalar loses the first).
    JobOptions opts;
    opts.nprocs = 4;
    opts.policy = ErrorPolicy::Fatal;
    opts.schedule = schedule({{2, 1}, {5, 3}});
    const LaunchReport report =
        launchWithRestart(opts, [](Proc &proc) { loop(proc, 8); });
    EXPECT_EQ(report.attempts, 3);
    EXPECT_TRUE(report.failureFired);
    ASSERT_EQ(report.failedRanks.size(), 2u);
    EXPECT_EQ(report.failedRanks[0], 1);
    EXPECT_EQ(report.failedRanks[1], 3);
    EXPECT_EQ(report.failedRank, 3);
}

TEST(Launcher, ReinitRecordsEveryFiredFailure)
{
    // Online recovery: one launch, several deaths, all recorded.
    JobOptions opts;
    opts.nprocs = 4;
    opts.policy = ErrorPolicy::Reinit;
    opts.schedule = schedule({{2, 0}, {4, 2}, {6, 2}});
    const LaunchReport report = launchReinit(
        opts, [](Proc &proc, ReinitState) { loop(proc, 8); });
    EXPECT_EQ(report.attempts, 1);
    EXPECT_EQ(report.finalResult.recoveries, 3);
    ASSERT_EQ(report.failedRanks.size(), 3u);
    EXPECT_EQ(report.failedRanks[0], 0);
    EXPECT_EQ(report.failedRanks[1], 2);
    EXPECT_EQ(report.failedRanks[2], 2);
    EXPECT_EQ(report.failedRank, 2);
}
