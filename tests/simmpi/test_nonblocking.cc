/**
 * @file
 * Nonblocking point-to-point tests: isend/irecv/wait/test semantics,
 * ordering guarantees, and the classic exchange pattern written the
 * MPI_Waitall way.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/simmpi/proc.hh"
#include "src/simmpi/runtime.hh"

using namespace match::simmpi;

namespace
{

JobOptions
options(int nprocs)
{
    JobOptions opts;
    opts.nprocs = nprocs;
    return opts;
}

} // namespace

TEST(Nonblocking, IrecvThenWaitDeliversPayload)
{
    Runtime rt;
    int got = 0;
    rt.run(options(2), [&](Proc &proc) {
        if (proc.rank() == 0) {
            int buf = 0;
            const int req = proc.irecv(1, 5, &buf, sizeof(buf));
            const RecvStatus status = proc.wait(req);
            EXPECT_EQ(status.source, 1);
            EXPECT_EQ(status.tag, 5);
            got = buf;
        } else {
            const int value = 99;
            proc.send(0, 5, &value, sizeof(value));
        }
    });
    EXPECT_EQ(got, 99);
}

TEST(Nonblocking, IsendCompletesImmediately)
{
    Runtime rt;
    rt.run(options(2), [&](Proc &proc) {
        if (proc.rank() == 0) {
            int value = 7;
            const int req = proc.isend(1, 0, &value, sizeof(value));
            value = -1; // eager send: buffer reusable at once
            EXPECT_TRUE(proc.test(req));
            proc.wait(req);
        } else {
            int buf = 0;
            proc.recv(0, 0, &buf, sizeof(buf));
            EXPECT_EQ(buf, 7);
        }
    });
}

TEST(Nonblocking, TestReflectsMessageArrival)
{
    Runtime rt;
    rt.run(options(2), [&](Proc &proc) {
        if (proc.rank() == 0) {
            int buf = 0;
            const int req = proc.irecv(1, 3, &buf, sizeof(buf));
            EXPECT_FALSE(proc.test(req)); // nothing sent yet
            proc.barrier();               // sender fires before this
            proc.barrier();
            EXPECT_TRUE(proc.test(req));
            proc.wait(req);
            EXPECT_EQ(buf, 11);
        } else {
            proc.barrier();
            const int value = 11;
            proc.send(0, 3, &value, sizeof(value));
            proc.barrier();
        }
    });
}

TEST(Nonblocking, WaitallCompletesAllRequests)
{
    Runtime rt;
    const int procs = 8;
    std::vector<int> sums(procs, 0);
    rt.run(options(procs), [&](Proc &proc) {
        const int r = proc.rank();
        const int left = (r + procs - 1) % procs;
        const int right = (r + 1) % procs;
        int from_left = 0, from_right = 0;
        std::vector<int> reqs;
        reqs.push_back(proc.irecv(right, 0, &from_right,
                                  sizeof(from_right)));
        reqs.push_back(proc.irecv(left, 1, &from_left,
                                  sizeof(from_left)));
        reqs.push_back(proc.isend(left, 0, &r, sizeof(r)));
        reqs.push_back(proc.isend(right, 1, &r, sizeof(r)));
        proc.waitall(reqs);
        sums[r] = from_left + from_right;
    });
    for (int r = 0; r < procs; ++r) {
        const int left = (r + procs - 1) % procs;
        const int right = (r + 1) % procs;
        EXPECT_EQ(sums[r], left + right);
    }
}

TEST(Nonblocking, MultipleOutstandingIrecvsMatchInOrder)
{
    Runtime rt;
    rt.run(options(2), [&](Proc &proc) {
        if (proc.rank() == 0) {
            int a = 0, b = 0;
            const int ra = proc.irecv(1, 7, &a, sizeof(a));
            const int rb = proc.irecv(1, 7, &b, sizeof(b));
            // FIFO per (source, tag): first-posted gets first message.
            proc.wait(ra);
            proc.wait(rb);
            EXPECT_EQ(a, 1);
            EXPECT_EQ(b, 2);
        } else {
            for (int v : {1, 2})
                proc.send(0, 7, &v, sizeof(v));
        }
    });
}

TEST(NonblockingDeath, WaitOnUnknownRequestPanics)
{
    EXPECT_DEATH(
        {
            Runtime rt;
            rt.run(options(1),
                   [&](Proc &proc) { proc.wait(12345); });
        },
        "unknown request");
}
