/**
 * @file
 * Collective semantics: correctness of the combined data, timing
 * synchronization, and BSP pipelining across communicator instances.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "src/simmpi/proc.hh"
#include "src/simmpi/runtime.hh"

using namespace match::simmpi;

namespace
{

JobOptions
options(int nprocs)
{
    JobOptions opts;
    opts.nprocs = nprocs;
    return opts;
}

} // namespace

class CollectivesSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(CollectivesSweep, AllreduceSumOfRanks)
{
    const int procs = GetParam();
    Runtime rt;
    std::vector<double> sums(procs, -1.0);
    rt.run(options(procs), [&](Proc &proc) {
        sums[proc.rank()] = proc.allreduce(
            static_cast<double>(proc.rank()), ReduceOp::Sum);
    });
    const double expect = procs * (procs - 1) / 2.0;
    for (double sum : sums)
        EXPECT_DOUBLE_EQ(sum, expect);
}

TEST_P(CollectivesSweep, AllreduceMinMax)
{
    const int procs = GetParam();
    Runtime rt;
    std::vector<double> mins(procs), maxs(procs);
    rt.run(options(procs), [&](Proc &proc) {
        const double mine = 10.0 + proc.rank();
        mins[proc.rank()] = proc.allreduce(mine, ReduceOp::Min);
        maxs[proc.rank()] = proc.allreduce(mine, ReduceOp::Max);
    });
    for (int r = 0; r < procs; ++r) {
        EXPECT_DOUBLE_EQ(mins[r], 10.0);
        EXPECT_DOUBLE_EQ(maxs[r], 10.0 + procs - 1);
    }
}

TEST_P(CollectivesSweep, VectorAllreduce)
{
    const int procs = GetParam();
    Runtime rt;
    std::vector<std::vector<double>> results(procs);
    rt.run(options(procs), [&](Proc &proc) {
        std::vector<double> mine{1.0, static_cast<double>(proc.rank()),
                                 2.0};
        std::vector<double> out(3);
        proc.allreduce(mine.data(), out.data(), 3, ReduceOp::Sum);
        results[proc.rank()] = out;
    });
    for (int r = 0; r < procs; ++r) {
        EXPECT_DOUBLE_EQ(results[r][0], procs);
        EXPECT_DOUBLE_EQ(results[r][1], procs * (procs - 1) / 2.0);
        EXPECT_DOUBLE_EQ(results[r][2], 2.0 * procs);
    }
}

TEST_P(CollectivesSweep, BcastDistributesRootBuffer)
{
    const int procs = GetParam();
    Runtime rt;
    std::vector<std::vector<int>> received(procs);
    rt.run(options(procs), [&](Proc &proc) {
        std::vector<int> buf(4, 0);
        if (proc.rank() == 0)
            buf = {3, 1, 4, 1};
        proc.bcast(0, buf.data(), buf.size() * sizeof(int));
        received[proc.rank()] = buf;
    });
    for (int r = 0; r < procs; ++r)
        EXPECT_EQ(received[r], (std::vector<int>{3, 1, 4, 1}));
}

TEST_P(CollectivesSweep, GatherCollectsInRankOrder)
{
    const int procs = GetParam();
    Runtime rt;
    std::vector<int> gathered;
    rt.run(options(procs), [&](Proc &proc) {
        const int mine = proc.rank() * 11;
        std::vector<int> out(procs, -1);
        proc.gather(0, &mine, sizeof(mine), out.data());
        if (proc.rank() == 0)
            gathered = out;
    });
    ASSERT_EQ(gathered.size(), static_cast<std::size_t>(procs));
    for (int r = 0; r < procs; ++r)
        EXPECT_EQ(gathered[r], r * 11);
}

TEST_P(CollectivesSweep, AllgatherGivesEveryoneEverything)
{
    const int procs = GetParam();
    Runtime rt;
    std::vector<std::vector<int>> results(procs);
    rt.run(options(procs), [&](Proc &proc) {
        const int mine = proc.rank() + 5;
        std::vector<int> out(procs, -1);
        proc.allgather(&mine, sizeof(mine), out.data());
        results[proc.rank()] = out;
    });
    for (int r = 0; r < procs; ++r)
        for (int s = 0; s < procs; ++s)
            EXPECT_EQ(results[r][s], s + 5);
}

TEST_P(CollectivesSweep, ExscanIsExclusivePrefixSum)
{
    const int procs = GetParam();
    Runtime rt;
    std::vector<std::int64_t> prefixes(procs, -1);
    rt.run(options(procs), [&](Proc &proc) {
        prefixes[proc.rank()] = proc.exscan(proc.rank() + 1);
    });
    std::int64_t running = 0;
    for (int r = 0; r < procs; ++r) {
        EXPECT_EQ(prefixes[r], running);
        running += r + 1;
    }
}

TEST_P(CollectivesSweep, AllreduceIntLogicalAnd)
{
    const int procs = GetParam();
    Runtime rt;
    std::vector<std::int64_t> all_true(procs), not_all(procs);
    rt.run(options(procs), [&](Proc &proc) {
        all_true[proc.rank()] =
            proc.allreduceInt(1, ReduceOp::LogicalAnd);
        not_all[proc.rank()] = proc.allreduceInt(
            proc.rank() == 0 ? 0 : 1, ReduceOp::LogicalAnd);
    });
    for (int r = 0; r < procs; ++r) {
        EXPECT_EQ(all_true[r], 1);
        EXPECT_EQ(not_all[r], 0);
    }
}

INSTANTIATE_TEST_SUITE_P(Scales, CollectivesSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

TEST(Collectives, BarrierSynchronizesClocks)
{
    Runtime rt;
    std::vector<SimTime> after(4);
    rt.run(options(4), [&](Proc &proc) {
        // Ranks do different amounts of work before the barrier.
        proc.compute(1.0e9 * (proc.rank() + 1));
        proc.barrier();
        after[proc.rank()] = proc.now();
    });
    for (int r = 1; r < 4; ++r)
        EXPECT_DOUBLE_EQ(after[r], after[0]);
    // The slowest rank did ~1 s of work (4e9 flops at 4 GFLOP/s).
    EXPECT_GE(after[0], 1.0);
}

TEST(Collectives, LaggardDominatesCompletionTime)
{
    Runtime rt;
    SimTime done = 0.0;
    rt.run(options(8), [&](Proc &proc) {
        if (proc.rank() == 3)
            proc.compute(8.0e9); // 2 s laggard
        proc.barrier();
        if (proc.rank() == 0)
            done = proc.now();
    });
    EXPECT_GE(done, 2.0);
    EXPECT_LT(done, 2.1);
}

TEST(Collectives, FastRankCanRunAheadThroughBackToBackCollectives)
{
    // Regression test for the collective-instance overlap bug: the last
    // arriver of allreduce #1 proceeds to allreduce #2 on the same comm
    // before the blocked ranks of #1 are resumed.
    Runtime rt;
    std::vector<double> first(4), second(4);
    rt.run(options(4), [&](Proc &proc) {
        first[proc.rank()] = proc.allreduce(1.0);
        second[proc.rank()] = proc.allreduce(10.0 + proc.rank());
    });
    for (int r = 0; r < 4; ++r) {
        EXPECT_DOUBLE_EQ(first[r], 4.0);
        EXPECT_DOUBLE_EQ(second[r], 46.0);
    }
}

TEST(Collectives, ManyIterationsOfMixedCollectives)
{
    Runtime rt;
    double final_sum = 0.0;
    rt.run(options(8), [&](Proc &proc) {
        double acc = proc.rank();
        for (int i = 0; i < 50; ++i) {
            acc = proc.allreduce(acc) / 8.0;
            proc.barrier();
            std::int64_t n = proc.allreduceInt(1);
            acc += static_cast<double>(n) * 0.001;
        }
        if (proc.rank() == 0)
            final_sum = acc;
    });
    EXPECT_GT(final_sum, 0.0);
}

TEST(Collectives, SingleRankCollectivesAreTrivial)
{
    Runtime rt;
    double value = 0.0;
    rt.run(options(1), [&](Proc &proc) {
        value = proc.allreduce(5.0);
        proc.barrier();
        int buf = 3;
        proc.bcast(0, &buf, sizeof(buf));
        EXPECT_EQ(buf, 3);
    });
    EXPECT_DOUBLE_EQ(value, 5.0);
}

TEST(Collectives, TimeAdvancesMonotonically)
{
    Runtime rt;
    rt.run(options(4), [&](Proc &proc) {
        SimTime last = proc.now();
        for (int i = 0; i < 10; ++i) {
            proc.allreduce(1.0);
            EXPECT_GE(proc.now(), last);
            last = proc.now();
            proc.compute(1e6);
            EXPECT_GT(proc.now(), last);
            last = proc.now();
        }
    });
}
