/**
 * @file
 * Algorithm-1 tests: the three principles individually, trace round
 * trips, and an end-to-end validation on an instrumented CG kernel whose
 * expected checkpoint set matches what the proxy apps hand-protect.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "src/analysis/ckpt_finder.hh"
#include "src/analysis/trace.hh"

namespace fs = std::filesystem;
using namespace match::analysis;

namespace
{

/** Instrument a tiny CG-like loop. Locations:
 *  A (matrix, constant), b (rhs, constant), x/r/p (state, varying),
 *  rtrans (scalar state), alpha (loop-local temporary), iter (counter).
 */
Trace
cgTrace(int iterations)
{
    Trace trace;
    Tracer tracer(trace);
    tracer.define("A", 6.0, 10);
    tracer.define("b", 1.0, 11);
    tracer.define("x", 0.0, 12);
    tracer.define("r", 1.0, 13);
    tracer.define("p", 1.0, 14);
    tracer.define("rtrans", 8.0, 15);
    tracer.define("iter", 0.0, 16);

    double x = 0.0, r = 1.0, p = 1.0, rtrans = 8.0;
    tracer.loopBegin();
    for (int i = 0; i < iterations; ++i) {
        tracer.loopIteration();
        tracer.read("iter", i, 20);
        tracer.write("iter", i + 1, 20);
        tracer.read("A", 6.0, 21); // constant matrix
        tracer.read("p", p, 21);
        // alpha is defined inside the loop: principle 1 excludes it.
        const double alpha = rtrans / (7.0 + i);
        tracer.define("alpha", alpha, 22);
        tracer.read("alpha", alpha, 23);
        x += alpha * p;
        tracer.write("x", x, 23);
        r -= alpha * 0.5;
        tracer.write("r", r, 24);
        tracer.read("b", 1.0, 24); // constant rhs
        rtrans = r * r;
        tracer.read("rtrans", rtrans, 25);
        tracer.write("rtrans", rtrans, 25);
        p = r + 0.1 * p;
        tracer.write("p", p, 26);
    }
    return trace;
}

} // namespace

TEST(CkptFinder, CgKernelFindsExactlyTheProtectedSet)
{
    const Trace trace = cgTrace(5);
    const auto locations = findCheckpointLocations(trace);
    // The same set the proxy apps pass to FTI_Protect: the loop counter
    // and the varying solver state; NOT the constant A/b, NOT the
    // loop-local alpha.
    EXPECT_EQ(locations, (std::vector<std::string>{"iter", "p", "r",
                                                   "rtrans", "x"}));
}

TEST(CkptFinder, Principle1ExcludesLoopLocals)
{
    const auto reports = analyzeLocations(cgTrace(4));
    for (const auto &report : reports) {
        if (report.location == "alpha") {
            EXPECT_FALSE(report.definedBeforeLoop);
            EXPECT_FALSE(report.checkpointed);
            // alpha IS used every iteration with varying values.
            EXPECT_GE(report.iterationsUsed, 4);
            EXPECT_TRUE(report.valuesVary);
        }
    }
}

TEST(CkptFinder, Principle2ExcludesSingleIterationUse)
{
    Trace trace;
    Tracer tracer(trace);
    tracer.define("once", 1.0);
    tracer.define("always", 1.0);
    tracer.loopBegin();
    for (int i = 0; i < 3; ++i) {
        tracer.loopIteration();
        if (i == 1)
            tracer.write("once", 2.0 + i);
        tracer.write("always", 2.0 + i);
    }
    const auto locations = findCheckpointLocations(trace);
    EXPECT_EQ(locations, (std::vector<std::string>{"always"}));
}

TEST(CkptFinder, Principle3ExcludesConstants)
{
    const auto reports = analyzeLocations(cgTrace(4));
    bool saw_matrix = false;
    for (const auto &report : reports) {
        if (report.location == "A") {
            saw_matrix = true;
            EXPECT_TRUE(report.definedBeforeLoop);
            EXPECT_GE(report.iterationsUsed, 2);
            EXPECT_FALSE(report.valuesVary);
            EXPECT_FALSE(report.checkpointed);
        }
    }
    EXPECT_TRUE(saw_matrix);
}

TEST(CkptFinder, EmptyTraceFindsNothing)
{
    Trace trace;
    EXPECT_TRUE(findCheckpointLocations(trace).empty());
}

TEST(CkptFinder, TraceWithoutLoopFindsNothing)
{
    Trace trace;
    Tracer tracer(trace);
    tracer.define("x", 1.0);
    tracer.write("x", 2.0);
    EXPECT_TRUE(findCheckpointLocations(trace).empty());
}

TEST(CkptFinder, WritesBeforeLoopCountAsDefinitions)
{
    Trace trace;
    Tracer tracer(trace);
    tracer.write("y", 1.0); // store before the loop defines y
    tracer.loopBegin();
    for (int i = 0; i < 2; ++i) {
        tracer.loopIteration();
        tracer.write("y", 2.0 + i);
    }
    EXPECT_EQ(findCheckpointLocations(trace),
              (std::vector<std::string>{"y"}));
}

TEST(CkptFinder, ReadsBeforeLoopDoNotDefine)
{
    Trace trace;
    Tracer tracer(trace);
    tracer.read("ghost", 1.0); // read of something never defined
    tracer.loopBegin();
    for (int i = 0; i < 2; ++i) {
        tracer.loopIteration();
        tracer.write("ghost", 2.0 + i);
    }
    EXPECT_TRUE(findCheckpointLocations(trace).empty());
}

TEST(Trace, TextRoundTrip)
{
    const Trace trace = cgTrace(3);
    Trace back;
    ASSERT_TRUE(Trace::fromText(trace.toText(), back));
    ASSERT_EQ(back.size(), trace.size());
    EXPECT_EQ(findCheckpointLocations(back),
              findCheckpointLocations(trace));
}

TEST(Trace, FileRoundTrip)
{
    const fs::path path = fs::temp_directory_path() / "match_trace.txt";
    const Trace trace = cgTrace(2);
    ASSERT_TRUE(trace.writeFile(path.string()));
    Trace back;
    ASSERT_TRUE(Trace::readFile(path.string(), back));
    EXPECT_EQ(back.size(), trace.size());
    fs::remove(path);
}

TEST(Trace, RejectsMalformedText)
{
    Trace out;
    EXPECT_FALSE(Trace::fromText("bogus x 1 2\n", out));
    EXPECT_FALSE(Trace::fromText("load onlyname\n", out));
    EXPECT_TRUE(Trace::fromText("", out));
    EXPECT_TRUE(Trace::fromText("loop\niter\n", out));
}

TEST(CkptFinder, DiagnosticsAreSortedByLocation)
{
    const auto reports = analyzeLocations(cgTrace(3));
    for (std::size_t i = 1; i < reports.size(); ++i)
        EXPECT_LT(reports[i - 1].location, reports[i].location);
}
