/**
 * @file
 * SCR under storage-tier faults: a persistent PFS outage skips the
 * prefix flush (no flushed markers, restart falls back to the cache),
 * transient PFS faults ride out on the flush job's retry loop, and an
 * exhausted cache tier abandons the dataset through SCR's own validity
 * vote instead of dying.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "src/scr/scr.hh"
#include "src/simmpi/runtime.hh"
#include "src/storage/faults.hh"

namespace fs = std::filesystem;
using namespace match;
using namespace match::scr;
using match::simmpi::JobOptions;
using match::simmpi::Proc;
using match::simmpi::Runtime;
using match::storage::FaultKind;
using match::storage::FaultWindow;
using match::storage::PathClass;

namespace
{

std::shared_ptr<storage::FaultInjectingBackend>
faultyBackend(std::vector<FaultWindow> windows, int retry_limit = 3)
{
    storage::StorageFaultPlan plan;
    plan.windows = std::move(windows);
    return std::make_shared<storage::FaultInjectingBackend>(
        storage::makeBackend(storage::Kind::Disk), std::move(plan),
        retry_limit);
}

ScrConfig
faultConfig(const std::string &job,
            std::shared_ptr<storage::Backend> backend)
{
    ScrConfig cfg;
    cfg.cacheDir =
        (fs::temp_directory_path() / "match-scr-fault-tests/cache")
            .string();
    cfg.prefixDir =
        (fs::temp_directory_path() / "match-scr-fault-tests/prefix")
            .string();
    cfg.jobId = job;
    cfg.scheme = Redundancy::Single;
    cfg.flushEvery = 1;
    cfg.backend = std::move(backend);
    return cfg;
}

JobOptions
options(int nprocs)
{
    JobOptions opts;
    opts.nprocs = nprocs;
    return opts;
}

void
writeState(const std::string &path, const std::vector<double> &state)
{
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(state.data()),
              static_cast<std::streamsize>(state.size() *
                                           sizeof(double)));
}

} // namespace

TEST(ScrFaults, PersistentPfsOutageSkipsFlushAndRestartUsesCache)
{
    auto backend = faultyBackend(
        {{1, 1000, PathClass::Pfs, FaultKind::WriteFault, 999}});
    auto config = faultConfig("pfs-outage", backend);
    Scr::purge(config);
    const int procs = 4;

    Runtime rt1;
    rt1.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, config);
        std::vector<double> state(32, proc.rank() + 1.5);
        scr.startCheckpoint();
        writeState(scr.routeFile("state.bin"), state);
        scr.completeCheckpoint(true);
        // The flush was skipped with a structured degrade record, not
        // attempted and died.
        ASSERT_EQ(scr.degradeEvents().size(), 1u);
        EXPECT_EQ(scr.degradeEvents()[0].fromLevel, 4);
        EXPECT_EQ(scr.degradeEvents()[0].cls, PathClass::Pfs);
        scr.finalize();
    });

    // No flushed markers: the dataset never poses as fetchable from
    // the prefix.
    for (int r = 0; r < procs; ++r)
        EXPECT_FALSE(backend->exists(
            Scr::flushedMarkerFile(config, 1, r)));

    // The cache copy is intact, so restart succeeds from it.
    Runtime rt2;
    rt2.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, config);
        ASSERT_TRUE(scr.haveRestart());
        scr.startRestart();
        std::vector<double> state(32, 0.0);
        std::ifstream in(scr.routeRestartFile("state.bin"),
                         std::ios::binary);
        ASSERT_TRUE(static_cast<bool>(in));
        in.read(reinterpret_cast<char *>(state.data()),
                static_cast<std::streamsize>(state.size() *
                                             sizeof(double)));
        ASSERT_TRUE(static_cast<bool>(in));
        EXPECT_DOUBLE_EQ(state[0], proc.rank() + 1.5);
        scr.completeRestart(true);
    });
    Scr::purge(config);
}

TEST(ScrFaults, TransientPfsFaultFlushStillLands)
{
    // Two strikes per path against a retry budget of three: the flush
    // job's bounded retry loop rides the window out and every flushed
    // marker lands.
    auto backend = faultyBackend(
        {{1, 1000, PathClass::Pfs, FaultKind::WriteFault, 2}}, 3);
    auto config = faultConfig("pfs-transient", backend);
    Scr::purge(config);
    const int procs = 4;

    const storage::FaultStats before = storage::faultGlobalStats();
    Runtime rt;
    rt.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, config);
        std::vector<double> state(32, proc.rank() * 2.0);
        scr.startCheckpoint();
        writeState(scr.routeFile("state.bin"), state);
        scr.completeCheckpoint(true);
        EXPECT_TRUE(scr.degradeEvents().empty());
        scr.finalize();
    });
    const storage::FaultStats after = storage::faultGlobalStats();

    EXPECT_EQ(after.failedFlushes, before.failedFlushes);
    EXPECT_GT(after.injectedWriteFaults, before.injectedWriteFaults);
    for (int r = 0; r < procs; ++r)
        EXPECT_TRUE(backend->exists(
            Scr::flushedMarkerFile(config, 1, r)));
    Scr::purge(config);
}

TEST(ScrFaults, OverlappingCopyWindowsAbandonDatasetNotFatal)
{
    // Partner redundancy copies cache -> cache, and Backend::copy
    // spends ONE retry budget across its read and write legs. A local
    // read window and a local write window that are each individually
    // rideable (2 <= 3) compound to 4 consecutive copy failures: the
    // pre-flight must see the combined budget as exhausted and abandon
    // the dataset through the validity vote — the old per-side checks
    // let the copy proceed and fatal on a file that provably existed.
    auto backend = faultyBackend(
        {{1, 1, PathClass::Local, FaultKind::ReadFault, 2},
         {1, 1, PathClass::Local, FaultKind::WriteFault, 2}},
        3);
    auto config = faultConfig("copy-overlap", backend);
    config.scheme = Redundancy::Partner;
    config.flushEvery = 0;
    Scr::purge(config);
    const int procs = 4;

    Runtime rt1;
    rt1.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, config);
        std::vector<double> state(16, 3.0);
        scr.startCheckpoint();
        writeState(scr.routeFile("state.bin"), state);
        scr.completeCheckpoint(true);
        ASSERT_EQ(scr.degradeEvents().size(), 1u);
        EXPECT_EQ(scr.degradeEvents()[0].toLevel, 0);
        EXPECT_EQ(scr.degradeEvents()[0].cls, PathClass::Local);
        scr.finalize();
    });

    Runtime rt2;
    rt2.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, config);
        EXPECT_FALSE(scr.haveRestart());
    });
    Scr::purge(config);
}

TEST(ScrFaults, ExhaustedCacheTierAbandonsDataset)
{
    auto backend = faultyBackend(
        {{1, 1, PathClass::Local, FaultKind::Enospc, 1}});
    auto config = faultConfig("cache-enospc", backend);
    config.flushEvery = 0;
    Scr::purge(config);
    const int procs = 4;

    Runtime rt1;
    rt1.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, config);
        std::vector<double> state(16, 1.0);
        scr.startCheckpoint();
        writeState(scr.routeFile("state.bin"), state);
        scr.completeCheckpoint(true);
        // Cache tier out past the retry budget: the dataset was
        // abandoned via the validity vote (toLevel 0), no commit.
        ASSERT_EQ(scr.degradeEvents().size(), 1u);
        EXPECT_EQ(scr.degradeEvents()[0].toLevel, 0);
        EXPECT_EQ(scr.degradeEvents()[0].cls, PathClass::Local);
        scr.finalize();
    });

    Runtime rt2;
    rt2.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, config);
        EXPECT_FALSE(scr.haveRestart());
    });
    Scr::purge(config);
}
