/**
 * @file
 * SCR library tests: the route-file programming model, redundancy
 * schemes (SINGLE/PARTNER/XOR) and their loss guarantees, flush-to-
 * prefix, interval policy, and the end-to-end SCR + Reinit design.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "src/ft/design.hh"
#include "src/scr/scr.hh"
#include "src/simmpi/runtime.hh"

namespace fs = std::filesystem;
using namespace match;
using namespace match::scr;
using match::simmpi::JobOptions;
using match::simmpi::Proc;
using match::simmpi::Runtime;

namespace
{

ScrConfig
testConfig(const std::string &job, Redundancy scheme)
{
    ScrConfig cfg;
    cfg.cacheDir =
        (fs::temp_directory_path() / "match-scr-tests/cache").string();
    cfg.prefixDir =
        (fs::temp_directory_path() / "match-scr-tests/prefix").string();
    cfg.jobId = job;
    cfg.scheme = scheme;
    cfg.groupSize = 4;
    return cfg;
}

JobOptions
options(int nprocs)
{
    JobOptions opts;
    opts.nprocs = nprocs;
    return opts;
}

void
writeState(const std::string &path, const std::vector<double> &state)
{
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(state.data()),
              static_cast<std::streamsize>(state.size() *
                                           sizeof(double)));
}

bool
readState(const std::string &path, std::vector<double> &state)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    in.read(reinterpret_cast<char *>(state.data()),
            static_cast<std::streamsize>(state.size() * sizeof(double)));
    return static_cast<bool>(in);
}

} // namespace

class ScrSchemes : public ::testing::TestWithParam<Redundancy>
{
};

TEST_P(ScrSchemes, CheckpointRestartRoundTrip)
{
    const auto cfg = testConfig(
        "rt-" + std::string(redundancyName(GetParam())), GetParam());
    Scr::purge(cfg);
    const int procs = 8;

    Runtime rt1;
    rt1.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, cfg);
        EXPECT_FALSE(scr.haveRestart());
        std::vector<double> state(64, proc.rank() + 0.5);
        scr.startCheckpoint();
        writeState(scr.routeFile("state.bin"), state);
        scr.completeCheckpoint(true);
        scr.finalize();
    });

    Runtime rt2;
    rt2.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, cfg);
        ASSERT_TRUE(scr.haveRestart());
        scr.startRestart();
        std::vector<double> state(64, 0.0);
        ASSERT_TRUE(
            readState(scr.routeRestartFile("state.bin"), state));
        scr.completeRestart(true);
        for (double v : state)
            EXPECT_DOUBLE_EQ(v, proc.rank() + 0.5);
    });
    Scr::purge(cfg);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ScrSchemes,
                         ::testing::Values(Redundancy::Single,
                                           Redundancy::Partner,
                                           Redundancy::Xor));

TEST(Scr, PartnerSurvivesOneNodeLoss)
{
    const auto cfg = testConfig("partner-loss", Redundancy::Partner);
    Scr::purge(cfg);
    const int procs = 6;
    Runtime rt1;
    rt1.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, cfg);
        std::vector<double> state(32, proc.rank() * 3.0);
        scr.startCheckpoint();
        writeState(scr.routeFile("s.bin"), state);
        scr.completeCheckpoint(true);
    });
    // Lose rank 2's cache copy.
    fs::remove_all(Scr::datasetDir(cfg, 1, 2));

    Runtime rt2;
    rt2.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, cfg);
        ASSERT_TRUE(scr.haveRestart());
        scr.startRestart();
        std::vector<double> state(32, 0.0);
        ASSERT_TRUE(readState(scr.routeRestartFile("s.bin"), state));
        EXPECT_DOUBLE_EQ(state[0], proc.rank() * 3.0);
        scr.completeRestart(true);
    });
    Scr::purge(cfg);
}

TEST(Scr, XorSurvivesOneLossPerGroup)
{
    const auto cfg = testConfig("xor-loss", Redundancy::Xor);
    Scr::purge(cfg);
    const int procs = 8; // two XOR groups of 4
    Runtime rt1;
    rt1.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, cfg);
        std::vector<double> state(48, proc.rank() + 1.25);
        scr.startCheckpoint();
        writeState(scr.routeFile("s.bin"), state);
        scr.completeCheckpoint(true);
    });
    // Lose one member per group: ranks 1 and 6.
    fs::remove_all(Scr::datasetDir(cfg, 1, 1));
    fs::remove_all(Scr::datasetDir(cfg, 1, 6));

    Runtime rt2;
    rt2.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, cfg);
        ASSERT_TRUE(scr.haveRestart());
        scr.startRestart();
        std::vector<double> state(48, 0.0);
        ASSERT_TRUE(readState(scr.routeRestartFile("s.bin"), state));
        for (double v : state)
            EXPECT_DOUBLE_EQ(v, proc.rank() + 1.25);
        scr.completeRestart(true);
    });
    Scr::purge(cfg);
}

TEST(ScrDeath, SingleCannotRebuildLostFile)
{
    const auto cfg = testConfig("single-loss", Redundancy::Single);
    Scr::purge(cfg);
    {
        Runtime rt;
        rt.run(options(2), [&](Proc &proc) {
            Scr scr(proc, cfg);
            std::vector<double> state(8, 1.0);
            scr.startCheckpoint();
            writeState(scr.routeFile("s.bin"), state);
            scr.completeCheckpoint(true);
        });
    }
    fs::remove_all(Scr::datasetDir(cfg, 1, 0));
    EXPECT_EXIT(
        {
            Runtime rt;
            rt.run(options(2), [&](Proc &proc) {
                Scr scr(proc, cfg);
                scr.startRestart();
                scr.routeRestartFile("s.bin");
            });
        },
        ::testing::ExitedWithCode(1), "SINGLE cannot rebuild");
    Scr::purge(cfg);
}

TEST(Scr, NeedCheckpointFollowsInterval)
{
    auto cfg = testConfig("interval", Redundancy::Single);
    cfg.checkpointInterval = 7;
    Scr::purge(cfg);
    Runtime rt;
    rt.run(options(1), [&](Proc &proc) {
        Scr scr(proc, cfg);
        EXPECT_FALSE(scr.needCheckpoint(0));
        EXPECT_FALSE(scr.needCheckpoint(6));
        EXPECT_TRUE(scr.needCheckpoint(7));
        EXPECT_FALSE(scr.needCheckpoint(8));
        EXPECT_TRUE(scr.needCheckpoint(14));
    });
    Scr::purge(cfg);
}

TEST(Scr, InvalidCheckpointIsNotCommitted)
{
    const auto cfg = testConfig("invalid", Redundancy::Single);
    Scr::purge(cfg);
    Runtime rt;
    rt.run(options(2), [&](Proc &proc) {
        Scr scr(proc, cfg);
        std::vector<double> state(8, 2.0);
        scr.startCheckpoint();
        writeState(scr.routeFile("s.bin"), state);
        // Rank 1 reports failure: nobody commits.
        scr.completeCheckpoint(proc.rank() != 1);
    });
    Runtime rt2;
    rt2.run(options(2), [&](Proc &proc) {
        Scr scr(proc, cfg);
        EXPECT_FALSE(scr.haveRestart());
    });
    Scr::purge(cfg);
}

TEST(Scr, FlushCopiesDatasetToPrefix)
{
    auto cfg = testConfig("flush", Redundancy::Single);
    cfg.flushEvery = 1;
    Scr::purge(cfg);
    Runtime rt;
    rt.run(options(2), [&](Proc &proc) {
        Scr scr(proc, cfg);
        std::vector<double> state(8, 4.0);
        scr.startCheckpoint();
        writeState(scr.routeFile("s.bin"), state);
        scr.completeCheckpoint(true);
    });
    EXPECT_TRUE(fs::exists(cfg.prefixDir + "/" + cfg.jobId +
                           "/dataset1/rank0/s.bin"));
    Scr::purge(cfg);
}

TEST(Scr, FlushRestartFetchesFromPrefixAfterCacheLoss)
{
    // The flushEvery path must make the dataset restartable from the
    // PFS alone: lose the whole node-local cache (every rank, markers
    // included) and the restart falls back to the flushed prefix copy.
    auto cfg = testConfig("flush-fetch", Redundancy::Single);
    cfg.flushEvery = 1;
    Scr::purge(cfg);
    const int procs = 2;
    Runtime rt1;
    rt1.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, cfg);
        std::vector<double> state(16, proc.rank() + 0.25);
        scr.startCheckpoint();
        writeState(scr.routeFile("s.bin"), state);
        scr.completeCheckpoint(true);
        scr.finalize(); // drains the flush
    });
    fs::remove_all(cfg.cacheDir + "/" + cfg.jobId); // node cache dies

    Runtime rt2;
    rt2.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, cfg);
        ASSERT_TRUE(scr.haveRestart())
            << "flushed dataset must be discoverable from the prefix";
        scr.startRestart();
        std::vector<double> state(16, 0.0);
        ASSERT_TRUE(readState(scr.routeRestartFile("s.bin"), state));
        for (double v : state)
            EXPECT_DOUBLE_EQ(v, proc.rank() + 0.25);
        scr.completeRestart(true);
    });
    Scr::purge(cfg);
}

TEST(Scr, RestartWithPendingDrainFallsBackToLastDrainedDataset)
{
    // Cache loss while dataset 2's flush is still queued: the pending
    // flush fails softly (its source is gone), so no flushed marker
    // appears and the restart — which first quiesces the drain — falls
    // back to dataset 1, the newest fully drained copy. Exactly the
    // undrained dataset is lost.
    auto cfg = testConfig("flush-pending", Redundancy::Single);
    cfg.flushEvery = 1;
    cfg.drain =
        std::make_shared<storage::DrainWorker>(storage::DrainMode::Async);
    Scr::purge(cfg);

    // Park the drain behind a gate so dataset 2's flush stays queued.
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool gate_open = false;
    auto openGate = [&] {
        std::lock_guard<std::mutex> lock(gate_mutex);
        gate_open = true;
        gate_cv.notify_all();
    };

    Runtime rt1;
    rt1.run(options(1), [&](Proc &proc) {
        Scr scr(proc, cfg);
        std::vector<double> state(16, 1.0);
        scr.startCheckpoint();
        writeState(scr.routeFile("s.bin"), state);
        scr.completeCheckpoint(true);
        // Dataset 1 is flushed and drained; now gate the worker.
        cfg.drain->quiesce();
        cfg.drain->enqueue([&]() -> std::uint64_t {
            std::unique_lock<std::mutex> lock(gate_mutex);
            gate_cv.wait(lock, [&] { return gate_open; });
            return 0;
        });
        state.assign(16, 2.0);
        scr.startCheckpoint();
        writeState(scr.routeFile("s.bin"), state);
        scr.completeCheckpoint(true); // flush of dataset 2: queued
        // No finalize: the incarnation dies with the drain pending.
    });
    fs::remove_all(cfg.cacheDir + "/" + cfg.jobId); // node cache dies

    // The restart quiesces the drain before scanning; open the gate
    // from the side so the queued flush runs (and fails softly).
    std::thread opener([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        openGate();
    });
    Runtime rt2;
    rt2.run(options(1), [&](Proc &proc) {
        Scr scr(proc, cfg);
        ASSERT_TRUE(scr.haveRestart());
        scr.startRestart();
        std::vector<double> state(16, 0.0);
        ASSERT_TRUE(readState(scr.routeRestartFile("s.bin"), state));
        EXPECT_DOUBLE_EQ(state[0], 1.0)
            << "restart must fall back to drained dataset 1";
        scr.completeRestart(true);
    });
    opener.join();
    Scr::purge(cfg);
}

TEST(Scr, CrashedDrainLosesExactlyTheUndrainedFlush)
{
    // As above, but the node crash discards the queued flush outright
    // (DrainWorker::crash) instead of letting it fail on a lost source.
    auto cfg = testConfig("flush-crash", Redundancy::Single);
    cfg.flushEvery = 1;
    cfg.drain =
        std::make_shared<storage::DrainWorker>(storage::DrainMode::Async);
    Scr::purge(cfg);

    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool gate_open = false;

    Runtime rt1;
    rt1.run(options(1), [&](Proc &proc) {
        Scr scr(proc, cfg);
        std::vector<double> state(8, 1.0);
        scr.startCheckpoint();
        writeState(scr.routeFile("s.bin"), state);
        scr.completeCheckpoint(true);
        cfg.drain->quiesce(); // dataset 1 fully drained
        cfg.drain->enqueue([&]() -> std::uint64_t {
            std::unique_lock<std::mutex> lock(gate_mutex);
            gate_cv.wait(lock, [&] { return gate_open; });
            return 0;
        });
        state.assign(8, 2.0);
        scr.startCheckpoint();
        writeState(scr.routeFile("s.bin"), state);
        scr.completeCheckpoint(true); // flush of dataset 2: queued
    });
    cfg.drain->crash(); // node dies before the queued flush drains
    EXPECT_GE(cfg.drain->discardedJobs(), 1u);
    {
        // Unpark the gate job (it may have started; crash never
        // discards a started job) so the drain can quiesce.
        std::lock_guard<std::mutex> lock(gate_mutex);
        gate_open = true;
        gate_cv.notify_all();
    }
    fs::remove_all(cfg.cacheDir + "/" + cfg.jobId);

    Runtime rt2;
    rt2.run(options(1), [&](Proc &proc) {
        Scr scr(proc, cfg);
        ASSERT_TRUE(scr.haveRestart());
        scr.startRestart();
        std::vector<double> state(8, 0.0);
        ASSERT_TRUE(readState(scr.routeRestartFile("s.bin"), state));
        EXPECT_DOUBLE_EQ(state[0], 1.0)
            << "the crashed flush must lose only dataset 2";
        scr.completeRestart(true);
    });
    Scr::purge(cfg);
}

TEST(Scr, OldDatasetsArePruned)
{
    const auto cfg = testConfig("prune", Redundancy::Single);
    Scr::purge(cfg);
    Runtime rt;
    rt.run(options(2), [&](Proc &proc) {
        Scr scr(proc, cfg);
        std::vector<double> state(8, 0.0);
        for (int d = 1; d <= 3; ++d) {
            state.assign(8, static_cast<double>(d));
            scr.startCheckpoint();
            writeState(scr.routeFile("s.bin"), state);
            scr.completeCheckpoint(true);
        }
    });
    EXPECT_FALSE(fs::exists(Scr::datasetDir(cfg, 2, 0)));
    EXPECT_TRUE(fs::exists(Scr::datasetDir(cfg, 3, 0)));
    Scr::purge(cfg);
}

TEST(Scr, EndToEndUnderReinitDesign)
{
    // The paper's Section V-E extension: replace FTI with SCR under the
    // same MPI recovery; a failure must not change the computed answer.
    const auto cfg = testConfig("reinit-e2e", Redundancy::Xor);
    auto run = [&](bool inject) {
        Scr::purge(cfg);
        ft::DesignRunConfig drc;
        drc.design = ft::Design::ReinitFti;
        drc.nprocs = 8;
        drc.injectFailure = inject;
        drc.failIteration = 13;
        drc.failRank = 5;
        std::vector<double> finals(8, 0.0);
        ft::runDesignRaw(drc, [&](Proc &proc) {
            Scr scr(proc, cfg);
            int iter = 0;
            double acc = 0.0;
            if (scr.haveRestart()) {
                scr.startRestart();
                std::vector<double> state(2);
                readState(scr.routeRestartFile("state.bin"), state);
                scr.completeRestart(true);
                iter = static_cast<int>(state[0]);
                acc = state[1];
            }
            for (; iter < 20; ++iter) {
                proc.iterationPoint(iter);
                if (scr.needCheckpoint(iter)) {
                    scr.startCheckpoint();
                    std::vector<double> state{
                        static_cast<double>(iter), acc};
                    writeState(scr.routeFile("state.bin"), state);
                    scr.completeCheckpoint(true);
                }
                acc += proc.allreduce(1.0);
            }
            scr.finalize();
            finals[proc.globalIndex()] = acc;
        });
        return finals;
    };
    const auto clean = run(false);
    const auto failed = run(true);
    for (int r = 0; r < 8; ++r) {
        EXPECT_DOUBLE_EQ(clean[r], 20 * 8.0);
        EXPECT_DOUBLE_EQ(clean[r], failed[r]) << r;
    }
    Scr::purge(cfg);
}

namespace
{

/** Flip one payload byte in every non-sidecar, non-marker file under
 *  `dir` (the datasets live in the shared DiskBackend, so the driver
 *  can rot them directly on disk). */
void
corruptDatasetTree(const fs::path &dir)
{
    for (const auto &entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name == "committed")
            continue;
        const std::string sidecar = ".crc32c";
        if (name.size() >= sidecar.size() &&
            name.compare(name.size() - sidecar.size(), sidecar.size(),
                         sidecar) == 0) {
            continue;
        }
        std::vector<char> bytes(fs::file_size(entry.path()));
        {
            std::ifstream in(entry.path(), std::ios::binary);
            in.read(bytes.data(),
                    static_cast<std::streamsize>(bytes.size()));
            ASSERT_TRUE(in) << entry.path();
        }
        bytes[bytes.size() / 2] ^= 0x5a;
        std::ofstream out(entry.path(),
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
}

} // namespace

TEST(ScrSdc, CorruptCacheCopyRebuiltFromPartner)
{
    auto cfg = testConfig("sdc-partner", Redundancy::Partner);
    cfg.sdcChecks = true;
    Scr::purge(cfg);
    const int procs = 8;
    Runtime rt1;
    rt1.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, cfg);
        std::vector<double> state(64, proc.rank() + 0.25);
        scr.startCheckpoint();
        writeState(scr.routeFile("state.bin"), state);
        scr.completeCheckpoint(true);
        scr.finalize();
    });
    // Rot rank 3's cache copy only: the sidecar mismatch must be
    // detected and the intact partner copy restored instead.
    {
        const fs::path path =
            fs::path(Scr::datasetDir(cfg, 1, 3)) / "state.bin";
        std::vector<char> bytes(fs::file_size(path));
        std::ifstream in(path, std::ios::binary);
        in.read(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
        ASSERT_TRUE(in);
        in.close();
        bytes[8] ^= 0x5a;
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    Runtime rt2;
    rt2.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, cfg);
        ASSERT_TRUE(scr.haveRestart());
        scr.startRestart();
        std::vector<double> state(64, 0.0);
        ASSERT_TRUE(
            readState(scr.routeRestartFile("state.bin"), state));
        scr.completeRestart(true);
        for (const double v : state)
            ASSERT_EQ(v, proc.rank() + 0.25);
    });
    Scr::purge(cfg);
}

TEST(ScrSdc, CorruptNewestDatasetFallsBackToOlder)
{
    auto cfg = testConfig("sdc-fallback", Redundancy::Partner);
    cfg.sdcChecks = true;
    Scr::purge(cfg);
    const int procs = 8;
    Runtime rt1;
    rt1.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, cfg);
        std::vector<double> state(64, proc.rank() + 1.5);
        scr.startCheckpoint();
        writeState(scr.routeFile("state.bin"), state);
        scr.completeCheckpoint(true);
        scr.finalize();
    });
    // Manufacture a newer committed dataset whose every copy — cache
    // AND partner — is rot (SCR prunes older datasets on commit, so
    // the driver clones dataset 1 instead of committing twice).
    const fs::path job = fs::path(cfg.cacheDir) / cfg.jobId;
    fs::copy(job / "dataset1", job / "dataset2",
             fs::copy_options::recursive);
    corruptDatasetTree(job / "dataset2");
    // Every rank's restart must reject dataset 2 at every tier and
    // restore dataset 1 — never rot, never fatal.
    Runtime rt2;
    rt2.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, cfg);
        ASSERT_TRUE(scr.haveRestart());
        scr.startRestart();
        std::vector<double> state(64, 0.0);
        ASSERT_TRUE(
            readState(scr.routeRestartFile("state.bin"), state));
        scr.completeRestart(true);
        for (const double v : state)
            ASSERT_EQ(v, proc.rank() + 1.5);
    });
    Scr::purge(cfg);
}

TEST(ScrSdcDeath, NoVerifiableDatasetIsFatalNotSilent)
{
    auto cfg = testConfig("sdc-exhausted", Redundancy::Single);
    cfg.sdcChecks = true;
    Scr::purge(cfg);
    const int procs = 4;
    Runtime rt1;
    rt1.run(options(procs), [&](Proc &proc) {
        Scr scr(proc, cfg);
        std::vector<double> state(16, 1.0);
        scr.startCheckpoint();
        writeState(scr.routeFile("state.bin"), state);
        scr.completeCheckpoint(true);
        scr.finalize();
    });
    corruptDatasetTree(fs::path(cfg.cacheDir) / cfg.jobId / "dataset1");
    // SINGLE has no redundancy tier, there is no flushed prefix copy
    // and no older dataset: the only correct outcome is an abort.
    EXPECT_EXIT(
        {
            Runtime rt2;
            rt2.run(options(procs), [&](Proc &proc) {
                Scr scr(proc, cfg);
                scr.startRestart();
                scr.routeRestartFile("state.bin");
            });
        },
        ::testing::ExitedWithCode(1),
        "no dataset passes SDC verification");
    Scr::purge(cfg);
}
