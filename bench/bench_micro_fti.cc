/**
 * @file
 * Micro-benchmarks of the FTI library: checkpoint wall cost per level
 * (real serialization + file I/O) and recovery.
 */

#include <benchmark/benchmark.h>

#include <filesystem>
#include <vector>

#include "src/fti/fti.hh"
#include "src/simmpi/runtime.hh"

using namespace match;
using namespace match::simmpi;

namespace
{

fti::FtiConfig
benchConfig(int level)
{
    fti::FtiConfig cfg;
    cfg.ckptDir = std::filesystem::exists("/dev/shm")
                      ? "/dev/shm/match-fti-micro"
                      : "/tmp/match-fti-micro";
    cfg.execId = "micro-l" + std::to_string(level);
    cfg.defaultLevel = level;
    cfg.groupSize = 4;
    cfg.parityShards = 4;
    return cfg;
}

void
BM_CheckpointLevel(benchmark::State &state)
{
    const int level = static_cast<int>(state.range(0));
    const std::size_t doubles = static_cast<std::size_t>(state.range(1));
    const auto cfg = benchConfig(level);
    for (auto _ : state) {
        fti::Fti::purge(cfg);
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = 8;
        runtime.run(opts, [&](Proc &proc) {
            fti::Fti fti(proc, cfg);
            std::vector<double> data(doubles, 1.5);
            fti.protect(0, data.data(), data.size() * sizeof(double));
            for (int id = 1; id <= 4; ++id)
                fti.checkpoint(id);
        });
    }
    fti::Fti::purge(cfg);
    state.SetBytesProcessed(state.iterations() * 4 * 8 *
                            static_cast<std::int64_t>(doubles) *
                            sizeof(double));
}
BENCHMARK(BM_CheckpointLevel)
    ->Args({1, 1 << 12})
    ->Args({2, 1 << 12})
    ->Args({3, 1 << 12})
    ->Args({4, 1 << 12})
    ->Args({1, 1 << 16});

void
BM_Recover(benchmark::State &state)
{
    const auto cfg = benchConfig(1);
    fti::Fti::purge(cfg);
    {
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = 8;
        runtime.run(opts, [&](Proc &proc) {
            fti::Fti fti(proc, cfg);
            std::vector<double> data(1 << 14, 2.5);
            fti.protect(0, data.data(), data.size() * sizeof(double));
            fti.checkpoint(1);
        });
    }
    for (auto _ : state) {
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = 8;
        runtime.run(opts, [&](Proc &proc) {
            fti::Fti fti(proc, cfg);
            std::vector<double> data(1 << 14, 0.0);
            fti.protect(0, data.data(), data.size() * sizeof(double));
            fti.recover();
            benchmark::DoNotOptimize(data.data());
        });
    }
    fti::Fti::purge(cfg);
    state.SetBytesProcessed(state.iterations() * 8 *
                            static_cast<std::int64_t>(1 << 14) *
                            sizeof(double));
}
BENCHMARK(BM_Recover);

} // namespace

BENCHMARK_MAIN();
