/**
 * @file
 * Micro-benchmarks of the FTI library: checkpoint wall cost per level
 * (real serialization + file I/O) and recovery, plus the blob
 * data-plane counters that make the zero-copy claim measurable — on
 * the MemBackend hot path, `bytesCopied` must stay near zero while
 * `bytesStored` counts every checkpoint byte admitted to the store.
 */

#include <benchmark/benchmark.h>

#include <filesystem>
#include <vector>

#include "src/fti/fti.hh"
#include "src/simmpi/runtime.hh"
#include "src/storage/blob.hh"
#include "src/util/crc32c.hh"

using namespace match;
using namespace match::simmpi;

namespace
{

fti::FtiConfig
benchConfig(int level)
{
    fti::FtiConfig cfg;
    cfg.ckptDir = std::filesystem::exists("/dev/shm")
                      ? "/dev/shm/match-fti-micro"
                      : "/tmp/match-fti-micro";
    cfg.execId = "micro-l" + std::to_string(level);
    cfg.defaultLevel = level;
    cfg.groupSize = 4;
    cfg.parityShards = 4;
    return cfg;
}

void
BM_CheckpointLevel(benchmark::State &state)
{
    const int level = static_cast<int>(state.range(0));
    const std::size_t doubles = static_cast<std::size_t>(state.range(1));
    const auto cfg = benchConfig(level);
    for (auto _ : state) {
        fti::Fti::purge(cfg);
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = 8;
        runtime.run(opts, [&](Proc &proc) {
            fti::Fti fti(proc, cfg);
            std::vector<double> data(doubles, 1.5);
            fti.protect(0, data.data(), data.size() * sizeof(double));
            for (int id = 1; id <= 4; ++id)
                fti.checkpoint(id);
        });
    }
    fti::Fti::purge(cfg);
    state.SetBytesProcessed(state.iterations() * 4 * 8 *
                            static_cast<std::int64_t>(doubles) *
                            sizeof(double));
}
BENCHMARK(BM_CheckpointLevel)
    ->Args({1, 1 << 12})
    ->Args({2, 1 << 12})
    ->Args({3, 1 << 12})
    ->Args({4, 1 << 12})
    ->Args({1, 1 << 16});

/**
 * The grid's checkpoint hot path: the same loop as BM_CheckpointLevel
 * but on a MemBackend (the simulation default), reporting the blob
 * layer's allocation/copy counters. `copiedPerStored` is the fraction
 * of admitted checkpoint payload that was memcpy'd — the zero-copy
 * data plane keeps it ~0 (the seed's vector-based plane copied every
 * byte at least once, ratio >= 1).
 */
void
BM_CheckpointMemDataPlane(benchmark::State &state)
{
    const int level = static_cast<int>(state.range(0));
    const std::size_t doubles = static_cast<std::size_t>(state.range(1));
    auto cfg = benchConfig(level);
    cfg.execId = "micro-mem-l" + std::to_string(level);
    cfg.backend = match::storage::makeBackend(match::storage::Kind::Mem);
    const auto before = match::storage::BlobPool::globalStats();
    for (auto _ : state) {
        fti::Fti::purge(cfg);
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = 8;
        runtime.run(opts, [&](Proc &proc) {
            fti::Fti fti(proc, cfg);
            std::vector<double> data(doubles, 1.5);
            fti.protect(0, data.data(), data.size() * sizeof(double));
            for (int id = 1; id <= 4; ++id)
                fti.checkpoint(id);
            fti.finalize();
        });
    }
    const auto after = match::storage::BlobPool::globalStats();
    const auto stored =
        static_cast<double>(after.bytesStored - before.bytesStored);
    state.counters["blobAllocs"] = benchmark::Counter(
        static_cast<double>(after.allocs - before.allocs));
    state.counters["blobPoolHits"] = benchmark::Counter(
        static_cast<double>(after.poolHits - before.poolHits));
    state.counters["bytesCopied"] = benchmark::Counter(
        static_cast<double>(after.bytesCopied - before.bytesCopied));
    state.counters["bytesStored"] = benchmark::Counter(stored);
    state.counters["copiedPerStored"] = benchmark::Counter(
        stored > 0.0 ? static_cast<double>(after.bytesCopied -
                                           before.bytesCopied) /
                           stored
                     : 0.0);
    state.SetBytesProcessed(state.iterations() * 4 * 8 *
                            static_cast<std::int64_t>(doubles) *
                            sizeof(double));
}
BENCHMARK(BM_CheckpointMemDataPlane)
    ->Args({1, 1 << 12})
    ->Args({2, 1 << 12})
    ->Args({3, 1 << 12})
    ->Args({4, 1 << 12});

/**
 * Raw CRC32C throughput: the checksum every sealed checkpoint blob now
 * pays once (and the SDC recovery ladder re-pays per verification).
 * The slice-by-8 software kernel should sustain multiple GB/s; a
 * regression here taxes every checkpoint commit.
 */
void
BM_Crc32c(benchmark::State &state)
{
    const std::size_t bytes = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> data(bytes);
    for (std::size_t i = 0; i < bytes; ++i)
        data[i] = static_cast<std::uint8_t>(i * 131u + 17u);
    std::uint64_t sum = 0;
    for (auto _ : state) {
        sum ^= util::crc32c(data.data(), data.size());
        benchmark::DoNotOptimize(sum);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Crc32c)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

/**
 * Checkpoint hot path with SDC hardening on: identical loop to
 * BM_CheckpointMemDataPlane at L1, plus the blob-seal CRC32C. The
 * delta against the MemDataPlane L1 row is the wall cost the checksum
 * adds per committed checkpoint.
 */
void
BM_CheckpointChecksummed(benchmark::State &state)
{
    const std::size_t doubles = static_cast<std::size_t>(state.range(0));
    auto cfg = benchConfig(1);
    cfg.execId = "micro-crc-l1";
    cfg.backend = match::storage::makeBackend(match::storage::Kind::Mem);
    cfg.sdcChecks = true;
    for (auto _ : state) {
        fti::Fti::purge(cfg);
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = 8;
        runtime.run(opts, [&](Proc &proc) {
            fti::Fti fti(proc, cfg);
            std::vector<double> data(doubles, 1.5);
            fti.protect(0, data.data(), data.size() * sizeof(double));
            for (int id = 1; id <= 4; ++id)
                fti.checkpoint(id);
            fti.finalize();
        });
    }
    state.SetBytesProcessed(state.iterations() * 4 * 8 *
                            static_cast<std::int64_t>(doubles) *
                            sizeof(double));
}
BENCHMARK(BM_CheckpointChecksummed)->Arg(1 << 12)->Arg(1 << 16);

void
BM_Recover(benchmark::State &state)
{
    const auto cfg = benchConfig(1);
    fti::Fti::purge(cfg);
    {
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = 8;
        runtime.run(opts, [&](Proc &proc) {
            fti::Fti fti(proc, cfg);
            std::vector<double> data(1 << 14, 2.5);
            fti.protect(0, data.data(), data.size() * sizeof(double));
            fti.checkpoint(1);
        });
    }
    for (auto _ : state) {
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = 8;
        runtime.run(opts, [&](Proc &proc) {
            fti::Fti fti(proc, cfg);
            std::vector<double> data(1 << 14, 0.0);
            fti.protect(0, data.data(), data.size() * sizeof(double));
            fti.recover();
            benchmark::DoNotOptimize(data.data());
        });
    }
    fti::Fti::purge(cfg);
    state.SetBytesProcessed(state.iterations() * 8 *
                            static_cast<std::int64_t>(1 << 14) *
                            sizeof(double));
}
BENCHMARK(BM_Recover);

} // namespace

BENCHMARK_MAIN();
