/**
 * @file
 * Ablation: ULFM background-overhead sensitivity. The paper attributes
 * ULFM-FTI's application slowdown to the runtime's heartbeat failure
 * detector and failure-aware communication wrappers (Bosilca et al.).
 * This bench sweeps the modelled per-tree-level slowdown and shows how
 * the Figure-5 gap between ULFM-FTI and REINIT-FTI responds.
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/util/table.hh"

using namespace match;
using namespace match::bench;

int
main(int argc, char **argv)
{
    const auto options = BenchOptions::parse(argc, argv);

    std::printf("=== Ablation: ULFM heartbeat/wrapper slowdown "
                "(HPCCG, small) ===\n\n");
    util::Table table({"SlowdownPerLevel", "#Processes",
                       "ULFM App(s)", "Reinit App(s)", "Overhead(%)"});
    for (double slowdown : {0.0, 0.014, 0.028, 0.056}) {
        for (int procs : {64, 512}) {
            core::ExperimentConfig config;
            config.app = "HPCCG";
            config.nprocs = procs;
            config.runs = options.runs;
            config.seed = options.seed;
            config.noiseSigma = 0.0;
            config.sandboxDir = options.sandboxDir;
            config.costParams.ulfmAppSlowdownPerLevel = slowdown;

            config.design = ft::Design::UlfmFti;
            const double ulfm =
                core::runExperiment(config).mean.application;
            config.design = ft::Design::ReinitFti;
            const double reinit =
                core::runExperiment(config).mean.application;

            table.addRow({util::Table::cell(slowdown, 3),
                          std::to_string(procs),
                          util::Table::cell(ulfm),
                          util::Table::cell(reinit),
                          util::Table::cell(
                              100.0 * (ulfm / reinit - 1.0), 1)});
        }
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("The paper's default (0.028/level) reproduces the "
                "Figure-5 overhead of ~15%% at 64 and ~25%% at 512 "
                "processes; 0 models a heartbeat-free ULFM.\n");
    return 0;
}
