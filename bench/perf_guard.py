#!/usr/bin/env python3
"""CI perf guard: fail on >30% regression vs the committed baseline.

Compares freshly produced BENCH_*.json records against the snapshots
under bench/baseline/:

 - BENCH_fig5.json (figure-bench perf record): cells/sec per storage
   backend row, and per drain-mode row.
 - BENCH_micro_rs_*.json (google-benchmark format): bytes_per_second of
   every BM_RsEncode row (the encode MB/s trajectory).

A metric passes when current >= min_ratio * baseline (one-sided: being
faster than the baseline is always fine). Metrics present only in the
baseline or only in the current record are reported but never fail the
guard, so adding or renaming benches stays painless. Refresh the
baseline (copy a CI artifact over bench/baseline/) whenever the runner
hardware generation changes; a stale baseline from slower hardware only
loosens the guard, never breaks it.

Usage:
    perf_guard.py [--baseline DIR] [--current DIR] [--min-ratio R]

The ratio can also come from MATCH_PERF_GUARD_RATIO (flag wins).
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as fh:
        return json.load(fh)


def figure_metrics(record):
    """(name, value) metrics of a figure-bench perf record."""
    metrics = {}
    for row in record.get("backends", []):
        name = "cellsPerSecond[storage=%s]" % row.get("storage")
        metrics[name] = row.get("cellsPerSecond", 0.0)
    for row in record.get("drain", []):
        name = "cellsPerSecond[drain=%s]" % row.get("mode")
        metrics[name] = row.get("cellsPerSecond", 0.0)
    return metrics


def micro_metrics(record):
    """(name, bytes_per_second) of every RS-encode micro-bench row."""
    metrics = {}
    for bench in record.get("benchmarks", []):
        name = bench.get("name", "")
        if "BM_RsEncode" not in name:
            continue
        if bench.get("run_type") == "aggregate":
            continue
        bps = bench.get("bytes_per_second")
        if bps:
            metrics["encodeBps[%s]" % name] = bps
    return metrics


def compare(label, baseline, current, min_ratio):
    failures = []
    for name in sorted(baseline):
        base = baseline[name]
        cur = current.get(name)
        if cur is None:
            print("  ~ %-55s only in baseline (skipped)" % name)
            continue
        if base <= 0:
            continue
        ratio = cur / base
        status = "ok" if ratio >= min_ratio else "REGRESSION"
        print("  %s %-55s %.3fx (%.3g -> %.3g)"
              % ("+" if status == "ok" else "!", name, ratio, base, cur))
        if status != "ok":
            failures.append("%s: %s at %.2fx < %.2fx"
                            % (label, name, ratio, min_ratio))
    for name in sorted(set(current) - set(baseline)):
        print("  ~ %-55s new metric (no baseline)" % name)
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baseline")
    parser.add_argument("--current", default=".")
    parser.add_argument("--min-ratio", type=float,
                        default=float(os.environ.get(
                            "MATCH_PERF_GUARD_RATIO", "0.7")))
    args = parser.parse_args()

    extractors = {
        "BENCH_fig5.json": figure_metrics,
        "BENCH_micro_rs_auto.json": micro_metrics,
        "BENCH_micro_rs_scalar.json": micro_metrics,
    }

    failures = []
    compared = 0
    for name, extract in extractors.items():
        base_path = os.path.join(args.baseline, name)
        cur_path = os.path.join(args.current, name)
        if not os.path.exists(base_path):
            print("~ %s: no baseline snapshot (skipped)" % name)
            continue
        if not os.path.exists(cur_path):
            failures.append("%s: baseline exists but no current record "
                            "was produced" % name)
            continue
        print("%s (min ratio %.2f):" % (name, args.min_ratio))
        failures += compare(name, extract(load(base_path)),
                            extract(load(cur_path)), args.min_ratio)
        compared += 1

    if compared == 0:
        print("perf guard: nothing to compare — commit baselines under "
              "%s" % args.baseline)
        return 1
    if failures:
        print("\nperf guard FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    print("\nperf guard passed (%d record(s))" % compared)
    return 0


if __name__ == "__main__":
    sys.exit(main())
