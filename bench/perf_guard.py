#!/usr/bin/env python3
"""CI perf guard: fail on >30% regression vs the committed baseline.

Compares freshly produced BENCH_*.json records against the snapshots
under bench/baseline/:

 - BENCH_fig5.json (figure-bench perf record): cells/sec per storage
   backend row and per drain-mode row (throughput, higher is better),
   plus the per-phase wall-clock attribution of each backend row
   (seconds, lower is better). Drain rows flagged "undersubscribed"
   (drain worker + grid workers oversubscribe the runner's cores, so
   the async row measures contention, not overlap) are excluded.
   The checkpoint-transform sweep rows (shipped PFS bytes and the
   per-stage bytesIn/bytesOut encoder counters per transform kind,
   lower is better; deltaShippedBytesReduction, higher is better) are
   enforced too: the committed baseline carries a "transforms"
   section, and the counters are deterministic per configuration, so
   any shipped-byte growth is a real encoder regression.
 - BENCH_ablation_failure_scenarios.json: storage-fault scenario
   counters (priced retries, demoted checkpoints, failed flushes) and
   mean virtual totals — all pure functions of the configuration, so
   any drift vs baseline is a real robustness regression, not runner
   noise. Warn-only until a baseline carrying a "storageFaults"
   section is committed. Two hard contracts need no baseline: the
   drawn fault plan must replay bit-identically through the trace
   format, and the faults-off scenario must report zero fault-engine
   activity.
 - BENCH_micro_rs_*.json (google-benchmark format): bytes_per_second of
   every BM_RsEncode row (the encode MB/s trajectory).
 - BENCH_micro_runtime.json (google-benchmark format): items_per_second
   of the fiber/messaging/collective rows, plus a hard zero check on
   every allocsPerEvent counter — the runtime hot path's allocation-free
   contract is pass/fail, not a ratio.

A throughput metric passes when current >= min_ratio * baseline
(one-sided: being faster than the baseline is always fine); a seconds
metric passes when current <= baseline / min_ratio or sits under an
absolute noise floor (tiny phases jitter wildly in relative terms).
Metrics present only in the baseline or only in the current record are
reported but never fail the guard, so adding or renaming benches stays
painless. Refresh the baseline (copy a CI artifact over bench/baseline/)
whenever the runner hardware generation changes; a stale baseline from
slower hardware only loosens the guard, never breaks it.

Usage:
    perf_guard.py [--baseline DIR] [--current DIR] [--min-ratio R]

The ratio can also come from MATCH_PERF_GUARD_RATIO (flag wins).
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as fh:
        return json.load(fh)


#: Phases smaller than this many seconds are exempt from the ratio
#: check: a 5 ms phase doubling is scheduler noise, not a regression.
PHASE_FLOOR_SECONDS = 0.05


def figure_metrics(record):
    """(name, value) throughput metrics of a figure-bench perf record."""
    metrics = {}
    for row in record.get("backends", []):
        name = "cellsPerSecond[storage=%s]" % row.get("storage")
        metrics[name] = row.get("cellsPerSecond", 0.0)
    for row in record.get("drain", []):
        if row.get("undersubscribed"):
            continue
        name = "cellsPerSecond[drain=%s]" % row.get("mode")
        metrics[name] = row.get("cellsPerSecond", 0.0)
    return metrics


def figure_phase_metrics(record):
    """(name, seconds) per-phase attribution of the backend rows."""
    metrics = {}
    for row in record.get("backends", []):
        for phase, seconds in (row.get("phases") or {}).items():
            metrics["%s[storage=%s]" % (phase, row.get("storage"))] = \
                seconds
    return metrics


def transform_reduction_metrics(record):
    """(name, ratio) reduction metrics of the transform sweep — higher
    is better (1 - shipped/none: how many PFS bytes the delta chain
    saved)."""
    metrics = {}
    reduction = record.get("deltaShippedBytesReduction")
    if reduction is not None:
        metrics["deltaShippedBytesReduction"] = reduction
    return metrics


def transform_byte_metrics(record):
    """(name, bytes) byte counters of the transform sweep — lower is
    better. Deterministic per configuration, so any growth is a real
    encoder regression, not noise."""
    metrics = {}
    for row in record.get("transforms", []):
        kind = row.get("transform")
        shipped = row.get("shippedBytes")
        if shipped is not None:
            metrics["shippedBytes[transform=%s]" % kind] = shipped
        for stage in ("delta", "compress"):
            stats = row.get(stage) or {}
            for counter in ("bytesIn", "bytesOut"):
                value = stats.get(counter)
                if value:
                    metrics["%s.%s[transform=%s]"
                            % (stage, counter, kind)] = value
    return metrics


def storage_fault_metrics(record):
    """(name, count) storage-fault engine counters of the failure
    ablation — lower is better. Every counter is a pure function of
    the configuration (virtual-result determinism), so any growth is a
    real robustness regression: more retries burned, more checkpoints
    demoted, more flushes lost under the identical fault schedule."""
    metrics = {}
    for row in record.get("storageFaults", []):
        scenario = row.get("scenario")
        if scenario == "faults-off":
            # All-zero by the bit-identity contract; covered by the
            # contract check below, not a ratio.
            continue
        metrics["meanTotalSum[faults=%s]" % scenario] = \
            row.get("meanTotalSum", 0.0)
        for counter in ("pricedRetries", "latencySpikes",
                        "degradedCkpts", "skippedEpochs",
                        "failedFlushes"):
            value = row.get(counter)
            if value:
                metrics["%s[faults=%s]" % (counter, scenario)] = value
    return metrics


def storage_fault_contract_failures(record):
    """Hard storage-fault contracts of the failure ablation, checked
    on the current record alone (no baseline needed): the drawn fault
    plan must round-trip through the trace format and replay
    bit-identically, and the faults-off scenario must report zero
    engine activity (the undecorated fast path)."""
    failures = []
    for flag in ("storageFaultTraceIdentical",
                 "storageFaultReplayBitIdentical"):
        value = record.get(flag)
        if value is None:
            continue
        if value:
            print("  + %-55s true" % flag)
        else:
            print("  ! %-55s FALSE" % flag)
            failures.append(
                "BENCH_ablation_failure_scenarios.json: %s is false "
                "(fault schedule not replayable)" % flag)
    for row in record.get("storageFaults", []):
        if row.get("scenario") != "faults-off":
            continue
        dirty = [k for k, v in row.items()
                 if isinstance(v, (int, float)) and v and
                 k.startswith(("injected", "torn", "enospc", "priced",
                               "latency", "degraded", "skipped",
                               "failed"))]
        if dirty:
            print("  ! faults-off scenario has nonzero counters: %s"
                  % ", ".join(sorted(dirty)))
            failures.append(
                "BENCH_ablation_failure_scenarios.json: faults-off "
                "scenario touched the fault engine (%s)"
                % ", ".join(sorted(dirty)))
    return failures


def micro_metrics(record):
    """(name, bytes_per_second) of every RS-encode micro-bench row."""
    metrics = {}
    for bench in record.get("benchmarks", []):
        name = bench.get("name", "")
        if "BM_RsEncode" not in name:
            continue
        if bench.get("run_type") == "aggregate":
            continue
        bps = bench.get("bytes_per_second")
        if bps:
            metrics["encodeBps[%s]" % name] = bps
    return metrics


def runtime_metrics(record):
    """(name, items_per_second) of every runtime micro-bench row."""
    metrics = {}
    for bench in record.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        ips = bench.get("items_per_second")
        if ips:
            metrics["itemsPerSecond[%s]" % bench.get("name", "")] = ips
    return metrics


def alloc_contract_failures(record):
    """The hot path's allocation-free contract: every allocsPerEvent
    counter in the runtime micro-bench must be exactly zero."""
    failures = []
    for bench in record.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        allocs = bench.get("allocsPerEvent")
        if allocs is None:
            continue
        name = bench.get("name", "")
        if allocs > 0:
            print("  ! allocsPerEvent[%-42s %g (must be 0)"
                  % (name + "]", allocs))
            failures.append("BENCH_micro_runtime.json: %s allocates "
                            "%g times per event (contract: 0)"
                            % (name, allocs))
        else:
            print("  + allocsPerEvent[%-42s 0" % (name + "]"))
    return failures


def compare(label, baseline, current, min_ratio, lower_is_better=False,
            floor=0.0):
    failures = []
    for name in sorted(baseline):
        base = baseline[name]
        cur = current.get(name)
        if cur is None:
            print("  ~ %-55s only in baseline (skipped)" % name)
            continue
        if base <= 0:
            continue
        if lower_is_better:
            ok = cur <= base / min_ratio or cur <= floor
            ratio = base / cur if cur > 0 else float("inf")
        else:
            ratio = cur / base
            ok = ratio >= min_ratio
        status = "ok" if ok else "REGRESSION"
        print("  %s %-55s %.3fx (%.3g -> %.3g)"
              % ("+" if ok else "!", name, ratio, base, cur))
        if status != "ok":
            failures.append("%s: %s at %.2fx < %.2fx"
                            % (label, name, ratio, min_ratio))
    for name in sorted(set(current) - set(baseline)):
        print("  ~ %-55s new metric (no baseline)" % name)
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baseline")
    parser.add_argument("--current", default=".")
    parser.add_argument("--min-ratio", type=float,
                        default=float(os.environ.get(
                            "MATCH_PERF_GUARD_RATIO", "0.7")))
    args = parser.parse_args()

    # name -> list of (extractor, lower_is_better, floor) passes.
    extractors = {
        "BENCH_fig5.json": [
            (figure_metrics, False, 0.0),
            (figure_phase_metrics, True, PHASE_FLOOR_SECONDS),
            (transform_reduction_metrics, False, 0.0),
            (transform_byte_metrics, True, 0.0),
        ],
        "BENCH_ablation_failure_scenarios.json": [
            (storage_fault_metrics, True, 0.0),
        ],
        "BENCH_micro_rs_auto.json": [(micro_metrics, False, 0.0)],
        "BENCH_micro_rs_scalar.json": [(micro_metrics, False, 0.0)],
        "BENCH_micro_runtime.json": [(runtime_metrics, False, 0.0)],
    }

    failures = []
    warnings = []
    compared = 0
    for name, passes in extractors.items():
        base_path = os.path.join(args.baseline, name)
        cur_path = os.path.join(args.current, name)
        if not os.path.exists(base_path):
            print("~ %s: no baseline snapshot (skipped)" % name)
            continue
        if not os.path.exists(cur_path):
            failures.append("%s: baseline exists but no current record "
                            "was produced" % name)
            continue
        print("%s (min ratio %.2f):" % (name, args.min_ratio))
        base_record, cur_record = load(base_path), load(cur_path)
        record_failures = []
        for extract, lower, floor in passes:
            record_failures += compare(name, extract(base_record),
                                       extract(cur_record),
                                       args.min_ratio,
                                       lower_is_better=lower,
                                       floor=floor)
        if name == "BENCH_micro_runtime.json":
            record_failures += alloc_contract_failures(cur_record)
        if name == "BENCH_ablation_failure_scenarios.json":
            record_failures += \
                storage_fault_contract_failures(cur_record)
        # A degraded grid (quarantined cells) produces throughput
        # numbers that measure the failure handling, not the code under
        # guard: warn — loudly — instead of failing, so one poisoned
        # runner cell cannot mask or fake a perf regression verdict.
        quarantined = cur_record.get("quarantinedCells", 0)
        if quarantined:
            print("  ~ %s: %d quarantined cell(s) — perf checks "
                  "demoted to warnings" % (name, quarantined))
            warnings.append("%s: grid degraded (%d quarantined "
                            "cell(s)); its perf metrics were not "
                            "enforced" % (name, quarantined))
            warnings += record_failures
        else:
            failures += record_failures
        compared += 1

    if compared == 0:
        print("perf guard: nothing to compare — commit baselines under "
              "%s" % args.baseline)
        return 1
    if warnings:
        print("\nperf guard warnings (not fatal):")
        for warning in warnings:
            print("  " + warning)
    if failures:
        print("\nperf guard FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    print("\nperf guard passed (%d record(s))" % compared)
    return 0


if __name__ == "__main__":
    sys.exit(main())
