/**
 * @file
 * Reproduces Table I: the experimentation configuration for the six
 * proxy applications (arguments per input class and process counts).
 *
 * Shares the figure benches' CLI (--apps restricts the rows); there is
 * no grid to execute, so --jobs is accepted but has no effect.
 */

#include <cstdio>
#include <sstream>

#include "bench/common.hh"
#include "src/util/table.hh"

using namespace match;

int
main(int argc, char **argv)
{
    const auto options = bench::BenchOptions::parse(argc, argv);

    std::printf("=== Table I: Experimentation configuration for proxy "
                "applications ===\n");
    std::printf("(default scaling size: 64 processes; default input "
                "problem: small)\n\n");

    util::Table table({"Application", "Small Input", "Medium Input",
                       "Large Input", "Number of processes"});
    for (const std::string &app : options.apps) {
        const auto &spec = apps::findApp(app);
        std::ostringstream procs;
        for (std::size_t i = 0; i < spec.scalingSizes.size(); ++i) {
            if (i)
                procs << ", ";
            procs << spec.scalingSizes[i];
        }
        table.addRow({spec.name, spec.args(apps::InputSize::Small),
                      spec.args(apps::InputSize::Medium),
                      spec.args(apps::InputSize::Large), procs.str()});
    }
    std::printf("%s\n", table.toString().c_str());
    return 0;
}
