/**
 * @file
 * Reproduces Table I: the experimentation configuration for the six
 * proxy applications (arguments per input class and process counts).
 */

#include <cstdio>
#include <sstream>

#include "src/apps/app.hh"
#include "src/util/table.hh"

using namespace match;

int
main()
{
    std::printf("=== Table I: Experimentation configuration for proxy "
                "applications ===\n");
    std::printf("(default scaling size: 64 processes; default input "
                "problem: small)\n\n");

    util::Table table({"Application", "Small Input", "Medium Input",
                       "Large Input", "Number of processes"});
    for (const auto &spec : apps::registry()) {
        std::ostringstream procs;
        for (std::size_t i = 0; i < spec.scalingSizes.size(); ++i) {
            if (i)
                procs << ", ";
            procs << spec.scalingSizes[i];
        }
        table.addRow({spec.name, spec.args(apps::InputSize::Small),
                      spec.args(apps::InputSize::Medium),
                      spec.args(apps::InputSize::Large), procs.str()});
    }
    std::printf("%s\n", table.toString().c_str());
    return 0;
}
