#include "bench/common.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "src/ft/failure_model.hh"
#include "src/util/logging.hh"
#include "src/util/table.hh"

namespace match::bench
{

using apps::InputSize;
using core::ExperimentConfig;
using core::GridRunner;
using core::GridSpec;
using ft::Design;

void
badChoice(const char *flag, const std::string &got,
          std::initializer_list<const char *> choices)
{
    std::string menu;
    for (const char *choice : choices) {
        if (!menu.empty())
            menu += ", ";
        menu += choice;
    }
    util::fatal("%s: unknown value '%s' (valid choices: %s)", flag,
                got.c_str(), menu.c_str());
}

namespace
{

/**
 * Strict numeric flag parsing. The silent-atoi alternative turns
 * `--jobs abc` into `--jobs 0` — a different, valid-looking
 * configuration — so every numeric flag rejects non-numeric,
 * trailing-garbage and out-of-range values with a diagnostic that
 * echoes the offending text, like badChoice does for enum flags.
 */
long
parseIntFlag(const char *flag, const char *value, long min)
{
    char *end = nullptr;
    errno = 0;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || errno == ERANGE)
        util::fatal("%s: invalid value '%s' (expected an integer)",
                    flag, value);
    if (parsed < min)
        util::fatal("%s: invalid value '%s' (expected an integer "
                    ">= %ld)",
                    flag, value, min);
    return parsed;
}

std::uint64_t
parseU64Flag(const char *flag, const char *value)
{
    char *end = nullptr;
    errno = 0;
    if (value[0] == '-')
        util::fatal("%s: invalid value '%s' (expected a non-negative "
                    "integer)",
                    flag, value);
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0' || errno == ERANGE)
        util::fatal("%s: invalid value '%s' (expected a non-negative "
                    "integer)",
                    flag, value);
    return parsed;
}

double
parseDoubleFlag(const char *flag, const char *value, double min)
{
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0' || parsed < min)
        util::fatal("%s: invalid value '%s' (expected a number "
                    ">= %g)",
                    flag, value, min);
    return parsed;
}

} // anonymous namespace

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
            options.runs = 2;
        } else if (arg == "--runs" && i + 1 < argc) {
            options.runs =
                static_cast<int>(parseIntFlag("--runs", argv[++i], 1));
        } else if (arg == "--seed" && i + 1 < argc) {
            options.seed = parseU64Flag("--seed", argv[++i]);
        } else if (arg == "--csv" && i + 1 < argc) {
            options.csvDir = argv[++i];
        } else if (arg == "--sandbox" && i + 1 < argc) {
            options.sandboxDir = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            options.jobs =
                static_cast<int>(parseIntFlag("--jobs", argv[++i], 0));
        } else if (arg == "--storage" && i + 1 < argc) {
            const std::string kind = argv[++i];
            if (kind == "mem")
                options.storage = storage::Kind::Mem;
            else if (kind == "disk")
                options.storage = storage::Kind::Disk;
            else
                badChoice("--storage", kind, {"mem", "disk"});
        } else if (arg == "--drain" && i + 1 < argc) {
            const std::string mode = argv[++i];
            if (mode == "sync")
                options.drain = storage::DrainMode::Sync;
            else if (mode == "async")
                options.drain = storage::DrainMode::Async;
            else
                badChoice("--drain", mode, {"sync", "async"});
        } else if (arg == "--drain-depth" && i + 1 < argc) {
            options.drainDepth = static_cast<int>(
                parseIntFlag("--drain-depth", argv[++i], 0));
        } else if (arg == "--drain-capacity" && i + 1 < argc) {
            options.drainCapacityBytes = static_cast<std::size_t>(
                parseU64Flag("--drain-capacity", argv[++i]));
        } else if (arg == "--cell-timeout" && i + 1 < argc) {
            const std::string value = argv[++i];
            if (value == "auto") {
                options.autoCellTimeout = true;
                options.cellTimeoutSeconds = 0.0;
            } else {
                char *end = nullptr;
                const double seconds = std::strtod(value.c_str(), &end);
                if (end == value.c_str() || *end != '\0' || seconds < 0.0)
                    badChoice("--cell-timeout", value,
                              {"auto", "SECONDS (0 disables)"});
                options.cellTimeoutSeconds = seconds;
                options.autoCellTimeout = false;
            }
        } else if (arg == "--cell-retries" && i + 1 < argc) {
            options.cellRetries = static_cast<int>(
                parseIntFlag("--cell-retries", argv[++i], 0));
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (arg == "--no-resume") {
            options.resume = false;
        } else if (arg == "--strict") {
            options.strict = true;
        } else if (arg == "--pin" && i + 1 < argc) {
            const std::string mode = argv[++i];
            if (mode == "none")
                options.pin = core::PinMode::None;
            else if (mode == "auto")
                options.pin = core::PinMode::Auto;
            else if (mode == "cores")
                options.pin = core::PinMode::Cores;
            else
                badChoice("--pin", mode, {"none", "auto", "cores"});
        } else if (arg == "--failure-model" && i + 1 < argc) {
            const std::string name = argv[++i];
            if (!ft::parseFailureModel(name, options.failureModel)) {
                badChoice("--failure-model", name,
                          {"single", "independent", "correlated",
                           "trace"});
            }
        } else if (arg == "--failure-trace" && i + 1 < argc) {
            options.traceEvents = ft::readTraceFile(argv[++i]);
            options.failureModel = ft::FailureModelKind::Trace;
        } else if (arg == "--mean-failures" && i + 1 < argc) {
            options.meanFailures =
                parseDoubleFlag("--mean-failures", argv[++i], 0.0);
        } else if (arg == "--cascade-prob" && i + 1 < argc) {
            options.cascadeProb =
                parseDoubleFlag("--cascade-prob", argv[++i], 0.0);
        } else if (arg == "--corrupt-fraction" && i + 1 < argc) {
            options.corruptFraction =
                parseDoubleFlag("--corrupt-fraction", argv[++i], 0.0);
        } else if (arg == "--sdc-checks") {
            options.sdcChecks = true;
        } else if (arg == "--scrub-stride" && i + 1 < argc) {
            options.scrubStride = static_cast<int>(
                parseIntFlag("--scrub-stride", argv[++i], 0));
        } else if (arg == "--storage-fault-windows" && i + 1 < argc) {
            options.storageFaultWindows = static_cast<int>(
                parseIntFlag("--storage-fault-windows", argv[++i], 0));
        } else if (arg == "--storage-fault-pfs-bias" && i + 1 < argc) {
            options.storageFaultPfsBias = parseDoubleFlag(
                "--storage-fault-pfs-bias", argv[++i], 0.0);
        } else if (arg == "--storage-fault-mean-epochs" && i + 1 < argc) {
            options.storageFaultMeanEpochs = static_cast<int>(parseIntFlag(
                "--storage-fault-mean-epochs", argv[++i], 1));
        } else if (arg == "--storage-fault-strikes" && i + 1 < argc) {
            options.storageFaultStrikes = static_cast<int>(
                parseIntFlag("--storage-fault-strikes", argv[++i], 1));
        } else if (arg == "--storage-fault-trace" && i + 1 < argc) {
            options.storageFaultTrace =
                storage::readFaultTraceFile(argv[++i]);
            // A replayed trace engages the engine even without an
            // explicit window count (the draws are skipped anyway).
            if (options.storageFaultWindows == 0)
                options.storageFaultWindows = 1;
        } else if (arg == "--io-retry-limit" && i + 1 < argc) {
            options.ioRetryLimit = static_cast<int>(
                parseIntFlag("--io-retry-limit", argv[++i], 0));
        } else if (arg == "--transform" && i + 1 < argc) {
            const std::string name = argv[++i];
            if (!storage::parseTransformKind(name, options.transform)) {
                badChoice("--transform", name,
                          {"none", "delta", "compress",
                           "delta+compress"});
            }
        } else if (arg == "--perf") {
            options.perf = true;
        } else if (arg == "--perf-dir" && i + 1 < argc) {
            options.perfDir = argv[++i];
        } else if (arg == "--apps" && i + 1 < argc) {
            std::istringstream list(argv[++i]);
            std::string name;
            while (std::getline(list, name, ','))
                options.apps.push_back(name);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options: [--quick] [--runs N] [--seed S] [--csv DIR] "
                "[--apps A,B] [--sandbox DIR] [--jobs N] "
                "[--storage mem|disk] [--drain sync|async] "
                "[--drain-depth N] [--drain-capacity BYTES] "
                "[--pin none|auto|cores] "
                "[--cell-timeout SECS|auto] [--cell-retries N] "
                "[--resume|--no-resume] [--strict] "
                "[--failure-model single|independent|correlated|trace] "
                "[--failure-trace FILE] [--mean-failures M] "
                "[--cascade-prob P] [--corrupt-fraction F] "
                "[--sdc-checks] [--scrub-stride N] "
                "[--transform none|delta|compress|delta+compress] "
                "[--storage-fault-windows N] "
                "[--storage-fault-pfs-bias P] "
                "[--storage-fault-mean-epochs N] "
                "[--storage-fault-strikes N] "
                "[--storage-fault-trace FILE] [--io-retry-limit N] "
                "[--perf] [--perf-dir DIR]\n"
                "  --jobs N  grid worker threads (default: hardware "
                "concurrency; output is identical for any N)\n"
                "  --storage mem|disk  checkpoint sandbox backend "
                "(default mem: zero-syscall hot path)\n"
                "  --drain sync|async  PFS drain execution (default "
                "async: flush I/O overlaps compute; output identical)\n"
                "  --drain-depth N  burst-buffer queue bound, 0 = "
                "unbounded (wall-clock only)\n"
                "  --pin none|auto|cores  pin grid workers across "
                "NUMA nodes/cores (auto: only when every worker can "
                "own a core; workers' blob pools stay node-local; "
                "output identical for every mode)\n"
                "  --failure-model M  failure process for injected "
                "runs (default single: the paper's one uniform crash; "
                "independent/correlated draw multi-failure schedules; "
                "trace replays --failure-trace)\n"
                "  --failure-trace FILE  replay a failure trace "
                "(see bench/FAILURE_TRACES.md; implies "
                "--failure-model trace)\n"
                "  --mean-failures M  expected failures per run "
                "(independent/correlated models)\n"
                "  --cascade-prob P  node/rack cascade probability "
                "(correlated model)\n"
                "  --corrupt-fraction F  fraction of failures demoted "
                "to silent checkpoint corruption\n"
                "  --sdc-checks  CRC32C-verify checkpoints at "
                "recovery, fall back to older checkpoints on rot\n"
                "  --scrub-stride N  verify the newest checkpoint "
                "every N iterations (needs --sdc-checks)\n"
                "  --drain-capacity BYTES  burst-buffer capacity; "
                "flushes stall (priced) when staged bytes exceed it\n"
                "  --transform T  checkpoint data reduction (default "
                "none; delta = differential checkpoints vs the "
                "previous epoch, compress = RLE on L4 drain traffic; "
                "virtual-result axis, part of the cache key)\n"
                "  --storage-fault-windows N  deterministic storage-"
                "tier fault windows per run (default 0 = off; see "
                "bench/FAULTS.md; virtual-result axis, part of the "
                "cache key)\n"
                "  --storage-fault-pfs-bias P  probability a drawn "
                "window targets the PFS tier (default 0.75)\n"
                "  --storage-fault-mean-epochs N  mean fault-window "
                "length in checkpoint epochs (default 2)\n"
                "  --storage-fault-strikes N  failing attempts per "
                "(window, path) before the tier heals; more than "
                "--io-retry-limit models a persistent outage "
                "(default 2)\n"
                "  --storage-fault-trace FILE  replay a storage-fault "
                "trace verbatim (see bench/FAULTS.md; engages the "
                "engine)\n"
                "  --io-retry-limit N  checkpoint clients' bounded "
                "retry budget on storage errors (default 3; backoff "
                "priced in virtual time)\n"
                "  --cell-timeout SECS|auto  wall-clock watchdog per "
                "cell attempt (auto: 5x the grid's completed-cell p99; "
                "0 disables; wall-clock only, never in the cache key)\n"
                "  --cell-retries N  attempts after the first before a "
                "throwing/hung cell is quarantined (default 2)\n"
                "  --resume | --no-resume  journal cell status next to "
                "the result cache and resume a killed grid (default "
                "on; --no-resume discards the journal history)\n"
                "  --strict  exit nonzero when any cell was "
                "quarantined\n"
                "  --perf    time the grid under both backends and "
                "both drain modes, write BENCH_<name>.json\n"
                "  valid apps: %s\n",
                apps::registryNames().c_str());
            std::exit(0);
        } else {
            util::fatal("unknown option: %s", arg.c_str());
        }
    }
    if (options.apps.empty()) {
        for (const auto &spec : apps::registry())
            options.apps.push_back(spec.name);
    } else {
        for (const std::string &name : options.apps)
            apps::findApp(name); // fail fast with the valid-name list
    }
    return options;
}

core::GridSpec
BenchOptions::baseSpec() const
{
    GridSpec spec;
    spec.apps = apps;
    spec.runs = runs;
    spec.seed = seed;
    spec.sandboxDir = sandboxDir;
    spec.cacheDir = sandboxDir + "/cell-cache";
    spec.storage = storage;
    spec.drain = drain;
    spec.drainDepth = drainDepth;
    spec.failureModel = failureModel;
    spec.meanFailures = meanFailures;
    spec.cascadeProb = cascadeProb;
    spec.corruptFraction = corruptFraction;
    spec.traceEvents = traceEvents;
    spec.sdcChecks = sdcChecks;
    spec.scrubStride = scrubStride;
    spec.drainCapacityBytes = drainCapacityBytes;
    spec.transforms = {transform};
    spec.storageFaultWindows = storageFaultWindows;
    spec.storageFaultPfsBias = storageFaultPfsBias;
    spec.storageFaultMeanEpochs = storageFaultMeanEpochs;
    spec.storageFaultStrikes = storageFaultStrikes;
    spec.storageFaultTrace = storageFaultTrace;
    spec.ioRetryLimit = ioRetryLimit;
    return spec;
}

core::GridPolicy
BenchOptions::gridPolicy() const
{
    core::GridPolicy policy;
    policy.cellTimeoutSeconds = cellTimeoutSeconds;
    policy.autoTimeout = autoCellTimeout;
    policy.cellRetries = cellRetries;
    policy.resume = resume;
    return policy;
}

core::GridRunner
BenchOptions::makeRunner() const
{
    return core::GridRunner(jobs, pin, gridPolicy());
}

int
reportCellFailures(const core::GridTiming &timing)
{
    if (timing.failures.empty())
        return 0;
    std::printf("\n!!! %zu cell(s) quarantined (grid degraded; healthy "
                "cells completed):\n",
                timing.failures.size());
    for (const core::CellFailure &failure : timing.failures) {
        std::printf("  - %s [key %s]: %d attempt(s), %s: %s\n",
                    failure.summary.c_str(), failure.key.c_str(),
                    failure.attempts,
                    failure.timedOut ? "watchdog timeout" : "exception",
                    failure.lastError.c_str());
    }
    return static_cast<int>(timing.failures.size());
}

int
gridExitCode(const BenchOptions &options, int quarantined)
{
    if (quarantined > 0 && options.strict) {
        util::warn("--strict: %d quarantined cell(s) -> exit 1",
                   quarantined);
        return 1;
    }
    return 0;
}

namespace
{

std::string
sanitize(std::string name)
{
    std::replace(name.begin(), name.end(), ' ', '_');
    return name;
}

/** Sorted-copy percentile (nearest rank); q in [0, 1]. */
double
percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(rank, samples.size() - 1)];
}

/** Minimal JSON string escape for error texts in failure records. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
        } else {
            out += c;
        }
    }
    return out;
}

/** One backend's measurement in a perf record. */
struct PerfSample
{
    storage::Kind kind;
    core::GridTiming timing;
};

/** One drain mode's measurement (L4 grid) in a perf record. */
struct DrainSample
{
    storage::DrainMode mode;
    core::GridTiming timing;
};

/** One transform kind's measurement (the same L4 drained grid) in a
 *  perf record: wall timing plus the shipped-byte and encoder
 *  counters that prove (or disprove) the byte reduction. */
struct TransformSample
{
    storage::TransformKind kind;
    core::GridTiming timing;
    /** PFS bytes actually shipped by drain jobs during the run. */
    std::uint64_t shippedBytes = 0;
    storage::TransformStats delta;
    storage::TransformStats compress;
};

void
writeJsonTiming(std::FILE *out, const char *key, const char *label,
                const core::GridTiming &t, bool last,
                const std::string &extra = std::string())
{
    const double cells = static_cast<double>(t.cellSeconds.size());
    // Phase attribution: ckptSerialize/rsEncode/storage are exclusive
    // scheduler-thread phases, so simCore (everything else the grid
    // spent: the event loop, app kernels, collectives) is derived by
    // subtraction. Drain runs on its own thread and overlaps the
    // others, so it is reported alongside but never subtracted. With
    // more than one worker the phase sums span threads and simCore is
    // a lower bound.
    const double serialize =
        t.phases.secondsFor(util::Phase::CkptSerialize);
    const double rs = t.phases.secondsFor(util::Phase::RsEncode);
    const double io = t.phases.secondsFor(util::Phase::Storage);
    const double drain = t.phases.secondsFor(util::Phase::Drain);
    const double sim_core =
        std::max(0.0, t.totalSeconds - serialize - rs - io);
    std::fprintf(
        out,
        "    {\"%s\": \"%s\", \"totalSeconds\": %.6f, "
        "\"cellP50Seconds\": %.6f, \"cellP99Seconds\": %.6f, "
        "\"cellsPerSecond\": %.3f, "
        "\"phases\": {\"simCoreSeconds\": %.6f, "
        "\"ckptSerializeSeconds\": %.6f, \"rsEncodeSeconds\": %.6f, "
        "\"storageSeconds\": %.6f, \"drainSeconds\": %.6f}%s}%s\n",
        key, label, t.totalSeconds, percentile(t.cellSeconds, 0.50),
        percentile(t.cellSeconds, 0.99),
        t.totalSeconds > 0.0 ? cells / t.totalSeconds : 0.0, sim_core,
        serialize, rs, io, drain, extra.c_str(), last ? "" : ",");
}

/**
 * Emit BENCH_<slug>.json: the per-bench perf record CI uploads as an
 * artifact, accumulating the repo's wall-clock trajectory PR by PR.
 */
void
writePerfRecord(const BenchOptions &options, const FigureDef &def,
                int jobs, std::size_t cells,
                const std::vector<PerfSample> &samples,
                const std::vector<DrainSample> &drain_samples,
                const std::vector<TransformSample> &transform_samples,
                const storage::BlobStats &mem_blob,
                const std::vector<core::CellFailure> &failures)
{
    std::filesystem::create_directories(options.perfDir);
    const std::string path =
        options.perfDir + "/BENCH_" + def.slug + ".json";
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        util::warn("cannot write %s", path.c_str());
        return;
    }
    // GridRunner dedups identical cells: the per-cell stats cover the
    // computed (unique) cells, reported separately from the enumerated
    // grid size so the record stays internally consistent.
    const std::size_t computed =
        samples.empty() ? 0 : samples.front().timing.cellSeconds.size();
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"figure\": \"%s\",\n"
                 "  \"quick\": %s,\n"
                 "  \"runsPerCell\": %d,\n"
                 "  \"jobs\": %d,\n"
                 "  \"hardwareConcurrency\": %d,\n"
                 "  \"pin\": \"%s\",\n"
                 "  \"cells\": %zu,\n"
                 "  \"computedCells\": %zu,\n"
                 "  \"backends\": [\n",
                 def.slug, def.figure, options.quick ? "true" : "false",
                 options.runs, jobs, core::GridRunner::hardwareJobs(),
                 core::pinModeName(options.pin), cells, computed);
    for (std::size_t i = 0; i < samples.size(); ++i)
        writeJsonTiming(out, "storage",
                        storage::kindName(samples[i].kind),
                        samples[i].timing, i + 1 == samples.size());
    double disk_total = 0.0, mem_total = 0.0;
    for (const PerfSample &sample : samples) {
        (sample.kind == storage::Kind::Disk ? disk_total : mem_total) =
            sample.timing.totalSeconds;
    }
    std::fprintf(out, "  ],\n  \"memSpeedupOverDisk\": %.3f,\n",
                 mem_total > 0.0 ? disk_total / mem_total : 0.0);
    // Blob data-plane counters over the mem-backend run: the zero-copy
    // claim as numbers. bytesCopied counts payload memcpy'd between
    // staging buffers and the object store; bytesStored counts payload
    // admitted (copied or ownership-transferred), so copied/stored is
    // the fraction of checkpoint traffic that still moves bytes.
    std::fprintf(
        out,
        "  \"blob\": {\"allocs\": %llu, \"poolHits\": %llu, "
        "\"bytesCopied\": %llu, \"bytesStored\": %llu, "
        "\"copiedPerStored\": %.4f},\n",
        static_cast<unsigned long long>(mem_blob.allocs),
        static_cast<unsigned long long>(mem_blob.poolHits),
        static_cast<unsigned long long>(mem_blob.bytesCopied),
        static_cast<unsigned long long>(mem_blob.bytesStored),
        mem_blob.bytesStored > 0
            ? static_cast<double>(mem_blob.bytesCopied) /
                  static_cast<double>(mem_blob.bytesStored)
            : 0.0);
    // The drain axis: the same grid forced to L4 checkpoints at a
    // dense stride (so every cell carries PFS flush traffic), sync vs
    // async execution.
    double sync_total = 0.0, async_total = 0.0;
    std::fprintf(out, "  \"drainCkptLevel\": 4,\n"
                      "  \"drainCkptStride\": 2,\n"
                      "  \"drain\": [\n");
    // Async drain only overlaps when the drain worker gets a core the
    // grid workers are not already saturating: with jobs + 1 threads on
    // fewer cores the async row measures contention, not overlap, so it
    // is flagged for perf_guard to skip rather than fail on.
    const bool undersubscribed =
        jobs + 1 > core::GridRunner::hardwareJobs();
    for (std::size_t i = 0; i < drain_samples.size(); ++i) {
        const bool async =
            drain_samples[i].mode == storage::DrainMode::Async;
        writeJsonTiming(out, "mode",
                        storage::drainModeName(drain_samples[i].mode),
                        drain_samples[i].timing,
                        i + 1 == drain_samples.size(),
                        async ? std::string(", \"undersubscribed\": ") +
                                    (undersubscribed ? "true" : "false")
                              : std::string());
        (async ? async_total : sync_total) =
            drain_samples[i].timing.totalSeconds;
    }
    std::fprintf(out, "  ],\n  \"asyncDrainSpeedupOverSync\": %.3f,\n",
                 async_total > 0.0 ? sync_total / async_total : 0.0);
    // Transform axis: the same L4 drained grid swept over the data-
    // reduction chain. shippedBytes is the drain jobs' actual PFS
    // traffic; the per-stage encoder counters (bytesOut < bytesIn)
    // prove where the reduction came from. Orderable rows: the none
    // row is the baseline the other rows' shippedBytes compare to.
    std::uint64_t none_shipped = 0;
    std::uint64_t delta_shipped = 0;
    std::fprintf(out, "  \"transforms\": [\n");
    for (std::size_t i = 0; i < transform_samples.size(); ++i) {
        const TransformSample &sample = transform_samples[i];
        if (sample.kind == storage::TransformKind::None)
            none_shipped = sample.shippedBytes;
        if (sample.kind == storage::TransformKind::Delta)
            delta_shipped = sample.shippedBytes;
        std::fprintf(
            out,
            "    {\"transform\": \"%s\", \"totalSeconds\": %.6f, "
            "\"shippedBytes\": %llu, "
            "\"delta\": {\"bytesIn\": %llu, \"bytesOut\": %llu, "
            "\"applies\": %llu, \"reverses\": %llu}, "
            "\"compress\": {\"bytesIn\": %llu, \"bytesOut\": %llu, "
            "\"applies\": %llu, \"reverses\": %llu}}%s\n",
            storage::transformKindName(sample.kind),
            sample.timing.totalSeconds,
            static_cast<unsigned long long>(sample.shippedBytes),
            static_cast<unsigned long long>(sample.delta.bytesIn),
            static_cast<unsigned long long>(sample.delta.bytesOut),
            static_cast<unsigned long long>(sample.delta.applies),
            static_cast<unsigned long long>(sample.delta.reverses),
            static_cast<unsigned long long>(sample.compress.bytesIn),
            static_cast<unsigned long long>(sample.compress.bytesOut),
            static_cast<unsigned long long>(sample.compress.applies),
            static_cast<unsigned long long>(sample.compress.reverses),
            i + 1 == transform_samples.size() ? "" : ",");
    }
    std::fprintf(out,
                 "  ],\n  \"deltaShippedBytesReduction\": %.4f,\n",
                 none_shipped > 0
                     ? 1.0 - static_cast<double>(delta_shipped) /
                                 static_cast<double>(none_shipped)
                     : 0.0);
    // Structured degraded-grid record: quarantined cells (config,
    // attempts, last error) instead of an aborted sweep. perf_guard
    // downgrades its perf failures to warnings when this is nonzero —
    // a degraded grid's throughput numbers are not a regression signal.
    std::fprintf(out, "  \"quarantinedCells\": %zu,\n  \"failures\": [\n",
                 failures.size());
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const core::CellFailure &f = failures[i];
        std::fprintf(out,
                     "    {\"cell\": \"%s\", \"key\": \"%s\", "
                     "\"attempts\": %d, \"timedOut\": %s, "
                     "\"lastError\": \"%s\"}%s\n",
                     jsonEscape(f.summary).c_str(),
                     jsonEscape(f.key).c_str(), f.attempts,
                     f.timedOut ? "true" : "false",
                     jsonEscape(f.lastError).c_str(),
                     i + 1 == failures.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("perf: wrote %s (mem %.2fs vs disk %.2fs, %.2fx; "
                "L4 drain async %.2fs vs sync %.2fs, %.2fx; "
                "delta ships %.1f%% fewer PFS bytes)\n",
                path.c_str(), mem_total, disk_total,
                mem_total > 0.0 ? disk_total / mem_total : 0.0,
                async_total, sync_total,
                async_total > 0.0 ? sync_total / async_total : 0.0,
                100.0 * (none_shipped > 0
                             ? 1.0 - static_cast<double>(delta_shipped) /
                                         static_cast<double>(none_shipped)
                             : 0.0));
}

} // anonymous namespace

int
runFigure(const BenchOptions &options, const FigureDef &def)
{
    std::printf("=== %s: %s, %s ===\n", def.figure,
                def.sweep == Sweep::ScalingSizes
                    ? "scaling sizes (small input)"
                    : "input sizes (64 processes)",
                def.inject ? "one injected process failure"
                           : "no process failures");
    std::printf("(methodology: %d runs averaged per configuration)\n\n",
                options.runs);

    GridSpec spec = options.baseSpec();
    spec.injectFailure = def.inject;
    if (def.sweep == Sweep::ScalingSizes) {
        spec.inputs = {InputSize::Small};
        spec.endpointsOnly = options.quick;
    } else {
        spec.scales = {64};
        spec.inputs = {InputSize::Small, InputSize::Medium,
                       InputSize::Large};
    }

    // Parallel phase: all apps' cells at once, so the pool stays busy
    // across app boundaries. Rendering below follows enumeration order.
    const std::vector<ExperimentConfig> cells = spec.enumerate();
    const GridRunner runner = options.makeRunner();
    std::vector<core::ExperimentResult> results;
    // Timing of whichever grid produced the rendered results — its
    // failures are the ones the tables below render as zero rows.
    core::GridTiming timing;
    if (!options.perf) {
        results = runner.run(cells, &timing);
    } else {
        // Perf mode measures real simulation + storage work under both
        // backends: the result cache is bypassed (a replayed cell
        // measures nothing) and the disk baseline runs first so its
        // sandbox traffic cannot warm anything for the mem run.
        GridSpec timed = spec;
        timed.cacheDir.clear();
        std::vector<PerfSample> samples;
        storage::BlobStats mem_blob;
        for (const storage::Kind kind :
             {storage::Kind::Disk, storage::Kind::Mem}) {
            timed.storage = kind;
            PerfSample sample{kind, {}};
            const storage::BlobStats before =
                storage::BlobPool::globalStats();
            auto timed_results = runner.run(timed.enumerate(),
                                            &sample.timing);
            const storage::BlobStats after =
                storage::BlobPool::globalStats();
            samples.push_back(std::move(sample));
            // Results are backend-invariant; render from the mem run,
            // whose data-plane counters also land in the perf record.
            if (kind == storage::Kind::Mem) {
                results = std::move(timed_results);
                timing = samples.back().timing;
                mem_blob.allocs = after.allocs - before.allocs;
                mem_blob.poolHits = after.poolHits - before.poolHits;
                mem_blob.bytesCopied =
                    after.bytesCopied - before.bytesCopied;
                mem_blob.bytesStored =
                    after.bytesStored - before.bytesStored;
            }
        }
        // Drain axis: force L4 at a dense stride so every cell carries
        // substantial PFS flush traffic (the overlap win is bounded by
        // the flush share), then time sync (inline replay) vs async
        // (overlap). The sync baseline runs first, mirroring the
        // disk-first rule. Note the win needs spare cores: a
        // single-core host measures ~parity by construction.
        GridSpec drained = timed;
        drained.storage = storage::Kind::Mem;
        drained.ckptLevels = {4};
        drained.ckptStrides = {2};
        std::vector<DrainSample> drain_samples;
        for (const storage::DrainMode mode :
             {storage::DrainMode::Sync, storage::DrainMode::Async}) {
            drained.drain = mode;
            DrainSample sample{mode, {}};
            runner.run(drained.enumerate(), &sample.timing);
            drain_samples.push_back(std::move(sample));
        }
        // Transform axis: the drained L4 grid again, swept over the
        // data-reduction chain under the sync drain (inline replay, so
        // the shipped-byte snapshot brackets exactly this sweep's
        // jobs). Byte counters are snapshot-diffed around each run.
        drained.drain = storage::DrainMode::Sync;
        std::vector<TransformSample> transform_samples;
        for (const storage::TransformKind kind :
             {storage::TransformKind::None, storage::TransformKind::Delta,
              storage::TransformKind::Compress,
              storage::TransformKind::DeltaCompress}) {
            drained.transforms = {kind};
            TransformSample sample;
            sample.kind = kind;
            const std::uint64_t shipped0 =
                storage::drainGlobalShippedBytes();
            const storage::TransformStats delta0 =
                storage::transformGlobalStats(
                    storage::TransformStage::Delta);
            const storage::TransformStats compress0 =
                storage::transformGlobalStats(
                    storage::TransformStage::Compress);
            runner.run(drained.enumerate(), &sample.timing);
            sample.shippedBytes =
                storage::drainGlobalShippedBytes() - shipped0;
            const storage::TransformStats delta1 =
                storage::transformGlobalStats(
                    storage::TransformStage::Delta);
            const storage::TransformStats compress1 =
                storage::transformGlobalStats(
                    storage::TransformStage::Compress);
            sample.delta = {delta1.bytesIn - delta0.bytesIn,
                            delta1.bytesOut - delta0.bytesOut,
                            delta1.applies - delta0.applies,
                            delta1.reverses - delta0.reverses};
            sample.compress = {
                compress1.bytesIn - compress0.bytesIn,
                compress1.bytesOut - compress0.bytesOut,
                compress1.applies - compress0.applies,
                compress1.reverses - compress0.reverses};
            transform_samples.push_back(std::move(sample));
        }
        writePerfRecord(options, def, runner.jobs(), cells.size(),
                        samples, drain_samples, transform_samples,
                        mem_blob, timing.failures);
    }

    std::size_t at = 0;
    for (const std::string &app : options.apps) {
        std::vector<std::string> headers;
        if (def.sweep == Sweep::ScalingSizes)
            headers = {"#Processes", "Design"};
        else
            headers = {"Input", "Design"};
        if (def.report == Report::Breakdown) {
            headers.insert(headers.end(),
                           {"Application(s)", "WriteCkpt(s)",
                            "Recovery(s)", "Total(s)"});
        } else {
            headers.insert(headers.end(), {"Recovery(s)"});
        }
        util::Table table(headers);

        for (; at < cells.size() && cells[at].app == app; ++at) {
            const ExperimentConfig &cell = cells[at];
            const ft::Breakdown &bd = results[at].mean;

            std::vector<std::string> row;
            row.push_back(def.sweep == Sweep::ScalingSizes
                              ? std::to_string(cell.nprocs)
                              : apps::inputSizeName(cell.input));
            row.push_back(ft::designName(cell.design));
            if (def.report == Report::Breakdown) {
                row.push_back(util::Table::cell(bd.application));
                row.push_back(util::Table::cell(bd.ckptWrite));
                row.push_back(util::Table::cell(bd.recovery));
                row.push_back(util::Table::cell(bd.total()));
            } else {
                row.push_back(util::Table::cell(bd.recovery));
            }
            table.addRow(std::move(row));
        }

        std::printf("--- %s ---\n%s\n", app.c_str(),
                    table.toString().c_str());
        if (!options.csvDir.empty()) {
            std::filesystem::create_directories(options.csvDir);
            const std::string path = options.csvDir + "/" +
                                     sanitize(def.figure) + "-" + app +
                                     ".csv";
            if (!table.writeCsv(path))
                util::warn("cannot write %s", path.c_str());
        }
    }

    return reportCellFailures(timing);
}

int
figureMain(const FigureDef &def, int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    return gridExitCode(options, runFigure(options, def));
}

} // namespace match::bench
