#include "bench/common.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "src/util/logging.hh"
#include "src/util/table.hh"

namespace match::bench
{

using apps::InputSize;
using core::ExperimentConfig;
using core::GridRunner;
using core::GridSpec;
using ft::Design;

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
            options.runs = 2;
        } else if (arg == "--runs" && i + 1 < argc) {
            options.runs = std::atoi(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            options.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--csv" && i + 1 < argc) {
            options.csvDir = argv[++i];
        } else if (arg == "--sandbox" && i + 1 < argc) {
            options.sandboxDir = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            options.jobs = std::atoi(argv[++i]);
        } else if (arg == "--apps" && i + 1 < argc) {
            std::istringstream list(argv[++i]);
            std::string name;
            while (std::getline(list, name, ','))
                options.apps.push_back(name);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options: [--quick] [--runs N] [--seed S] [--csv DIR] "
                "[--apps A,B] [--sandbox DIR] [--jobs N]\n"
                "  --jobs N  grid worker threads (default: hardware "
                "concurrency; output is identical for any N)\n"
                "  valid apps: %s\n",
                apps::registryNames().c_str());
            std::exit(0);
        } else {
            util::fatal("unknown option: %s", arg.c_str());
        }
    }
    if (options.apps.empty()) {
        for (const auto &spec : apps::registry())
            options.apps.push_back(spec.name);
    } else {
        for (const std::string &name : options.apps)
            apps::findApp(name); // fail fast with the valid-name list
    }
    return options;
}

core::GridSpec
BenchOptions::baseSpec() const
{
    GridSpec spec;
    spec.apps = apps;
    spec.runs = runs;
    spec.seed = seed;
    spec.sandboxDir = sandboxDir;
    spec.cacheDir = sandboxDir + "/cell-cache";
    return spec;
}

namespace
{

std::string
sanitize(std::string name)
{
    std::replace(name.begin(), name.end(), ' ', '_');
    return name;
}

} // anonymous namespace

void
runFigure(const BenchOptions &options, const FigureDef &def)
{
    std::printf("=== %s: %s, %s ===\n", def.figure,
                def.sweep == Sweep::ScalingSizes
                    ? "scaling sizes (small input)"
                    : "input sizes (64 processes)",
                def.inject ? "one injected process failure"
                           : "no process failures");
    std::printf("(methodology: %d runs averaged per configuration)\n\n",
                options.runs);

    GridSpec spec = options.baseSpec();
    spec.injectFailure = def.inject;
    if (def.sweep == Sweep::ScalingSizes) {
        spec.inputs = {InputSize::Small};
        spec.endpointsOnly = options.quick;
    } else {
        spec.scales = {64};
        spec.inputs = {InputSize::Small, InputSize::Medium,
                       InputSize::Large};
    }

    // Parallel phase: all apps' cells at once, so the pool stays busy
    // across app boundaries. Rendering below follows enumeration order.
    const std::vector<ExperimentConfig> cells = spec.enumerate();
    const std::vector<core::ExperimentResult> results =
        GridRunner(options.jobs).run(cells);

    std::size_t at = 0;
    for (const std::string &app : options.apps) {
        std::vector<std::string> headers;
        if (def.sweep == Sweep::ScalingSizes)
            headers = {"#Processes", "Design"};
        else
            headers = {"Input", "Design"};
        if (def.report == Report::Breakdown) {
            headers.insert(headers.end(),
                           {"Application(s)", "WriteCkpt(s)",
                            "Recovery(s)", "Total(s)"});
        } else {
            headers.insert(headers.end(), {"Recovery(s)"});
        }
        util::Table table(headers);

        for (; at < cells.size() && cells[at].app == app; ++at) {
            const ExperimentConfig &cell = cells[at];
            const ft::Breakdown &bd = results[at].mean;

            std::vector<std::string> row;
            row.push_back(def.sweep == Sweep::ScalingSizes
                              ? std::to_string(cell.nprocs)
                              : apps::inputSizeName(cell.input));
            row.push_back(ft::designName(cell.design));
            if (def.report == Report::Breakdown) {
                row.push_back(util::Table::cell(bd.application));
                row.push_back(util::Table::cell(bd.ckptWrite));
                row.push_back(util::Table::cell(bd.recovery));
                row.push_back(util::Table::cell(bd.total()));
            } else {
                row.push_back(util::Table::cell(bd.recovery));
            }
            table.addRow(std::move(row));
        }

        std::printf("--- %s ---\n%s\n", app.c_str(),
                    table.toString().c_str());
        if (!options.csvDir.empty()) {
            std::filesystem::create_directories(options.csvDir);
            const std::string path = options.csvDir + "/" +
                                     sanitize(def.figure) + "-" + app +
                                     ".csv";
            if (!table.writeCsv(path))
                util::warn("cannot write %s", path.c_str());
        }
    }
}

int
figureMain(const FigureDef &def, int argc, char **argv)
{
    runFigure(BenchOptions::parse(argc, argv), def);
    return 0;
}

} // namespace match::bench
