#include "bench/common.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "src/util/logging.hh"
#include "src/util/table.hh"

namespace match::bench
{

using apps::InputSize;
using core::ExperimentConfig;
using core::runExperiment;
using ft::Design;

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
            options.runs = 2;
        } else if (arg == "--runs" && i + 1 < argc) {
            options.runs = std::atoi(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            options.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--csv" && i + 1 < argc) {
            options.csvDir = argv[++i];
        } else if (arg == "--sandbox" && i + 1 < argc) {
            options.sandboxDir = argv[++i];
        } else if (arg == "--apps" && i + 1 < argc) {
            std::istringstream list(argv[++i]);
            std::string name;
            while (std::getline(list, name, ','))
                options.apps.push_back(name);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options: [--quick] [--runs N] [--seed S] [--csv DIR] "
                "[--apps A,B] [--sandbox DIR]\n");
            std::exit(0);
        } else {
            util::fatal("unknown option: %s", arg.c_str());
        }
    }
    if (options.apps.empty()) {
        for (const auto &spec : apps::registry())
            options.apps.push_back(spec.name);
    }
    return options;
}

namespace
{

std::string
sanitize(std::string name)
{
    std::replace(name.begin(), name.end(), ' ', '_');
    return name;
}

} // anonymous namespace

void
runFigure(const BenchOptions &options, const std::string &figure,
          Sweep sweep, bool inject, Report report)
{
    std::printf("=== %s: %s, %s ===\n", figure.c_str(),
                sweep == Sweep::ScalingSizes
                    ? "scaling sizes (small input)"
                    : "input sizes (64 processes)",
                inject ? "one injected process failure"
                       : "no process failures");
    std::printf("(methodology: %d runs averaged per configuration)\n\n",
                options.runs);

    for (const std::string &app : options.apps) {
        const auto &spec = apps::findApp(app);

        std::vector<std::pair<int, InputSize>> cells;
        if (sweep == Sweep::ScalingSizes) {
            for (int procs : spec.scalingSizes) {
                if (options.quick && procs != spec.scalingSizes.front() &&
                    procs != spec.scalingSizes.back())
                    continue;
                cells.emplace_back(procs, InputSize::Small);
            }
        } else {
            for (InputSize input : core::allInputs)
                cells.emplace_back(64, input);
        }

        std::vector<std::string> headers;
        if (sweep == Sweep::ScalingSizes)
            headers = {"#Processes", "Design"};
        else
            headers = {"Input", "Design"};
        if (report == Report::Breakdown) {
            headers.insert(headers.end(),
                           {"Application(s)", "WriteCkpt(s)",
                            "Recovery(s)", "Total(s)"});
        } else {
            headers.insert(headers.end(), {"Recovery(s)"});
        }
        util::Table table(headers);

        for (const auto &[procs, input] : cells) {
            for (Design design : ft::allDesigns) {
                ExperimentConfig config;
                config.app = app;
                config.input = input;
                config.nprocs = procs;
                config.design = design;
                config.injectFailure = inject;
                config.runs = options.runs;
                config.seed = options.seed;
                config.sandboxDir = options.sandboxDir;
                config.cacheDir = options.sandboxDir + "/cell-cache";
                const auto result = runExperiment(config);
                const ft::Breakdown &bd = result.mean;

                std::vector<std::string> row;
                row.push_back(sweep == Sweep::ScalingSizes
                                  ? std::to_string(procs)
                                  : apps::inputSizeName(input));
                row.push_back(ft::designName(design));
                if (report == Report::Breakdown) {
                    row.push_back(util::Table::cell(bd.application));
                    row.push_back(util::Table::cell(bd.ckptWrite));
                    row.push_back(util::Table::cell(bd.recovery));
                    row.push_back(util::Table::cell(bd.total()));
                } else {
                    row.push_back(util::Table::cell(bd.recovery));
                }
                table.addRow(std::move(row));
            }
        }

        std::printf("--- %s ---\n%s\n", app.c_str(),
                    table.toString().c_str());
        if (!options.csvDir.empty()) {
            std::filesystem::create_directories(options.csvDir);
            const std::string path = options.csvDir + "/" +
                                     sanitize(figure) + "-" + app +
                                     ".csv";
            if (!table.writeCsv(path))
                util::warn("cannot write %s", path.c_str());
        }
    }
}

} // namespace match::bench
