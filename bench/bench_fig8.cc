/**
 * @file
 * Reproduces Figure 8: execution-time breakdown per design across
 * input problem sizes (64 processes), with NO process failures.
 *
 * Expected shape (paper Sec. V-D): application and checkpoint time grow
 * with the input size; ULFM-FTI's overhead grows with the input size;
 * REINIT-FTI tracks RESTART-FTI.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace match::bench;
    return figureMain({"Figure 8", "fig8", Sweep::InputSizes,
                       /*inject=*/false, Report::Breakdown},
                      argc, argv);
}
