/**
 * @file
 * Reproduces Figure 7: MPI recovery time per design across scaling
 * sizes (one injected process failure, small input).
 *
 * Expected shape (paper Sec. V-C): Restart recovery is the slowest and
 * grows with P; ULFM recovery grows with P (up to 13x Reinit); Reinit
 * recovery is flat, independent of the scaling size.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace match::bench;
    return figureMain({"Figure 7", "fig7", Sweep::ScalingSizes,
                       /*inject=*/true, Report::Recovery},
                      argc, argv);
}
