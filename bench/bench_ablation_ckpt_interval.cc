/**
 * @file
 * Ablation: checkpoint-interval sweep (the paper fixes the stride at 10
 * iterations; this bench shows the classic trade-off behind that
 * choice: frequent checkpoints cost write time, sparse checkpoints cost
 * re-executed work after a failure).
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/util/table.hh"

using namespace match;
using namespace match::bench;

int
main(int argc, char **argv)
{
    const auto options = BenchOptions::parse(argc, argv);

    std::printf("=== Ablation: checkpoint interval (HPCCG, small, 64 "
                "processes, REINIT-FTI, one failure) ===\n\n");
    core::GridSpec spec = options.baseSpec();
    spec.apps = {"HPCCG"};
    spec.scales = {64};
    spec.designs = {ft::Design::ReinitFti};
    spec.injectFailure = true;
    spec.ckptStrides = {2, 5, 10, 20, 40, 80};
    const auto cells = spec.enumerate();
    core::GridTiming timing;
    const auto results = options.makeRunner().run(cells, &timing);

    util::Table table({"Stride(iters)", "WriteCkpt(s)", "Application(s)",
                       "Recovery(s)", "Total(s)"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const ft::Breakdown &mean = results[i].mean;
        table.addRow({std::to_string(cells[i].ckptStride),
                      util::Table::cell(mean.ckptWrite),
                      util::Table::cell(mean.application),
                      util::Table::cell(mean.recovery),
                      util::Table::cell(mean.total())});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("Note: application time includes the work re-executed "
                "since the last checkpoint, which grows with the "
                "stride; write time shrinks with the stride.\n");
    return gridExitCode(options, reportCellFailures(timing));
}
