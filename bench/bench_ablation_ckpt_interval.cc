/**
 * @file
 * Ablation: checkpoint-interval sweep (the paper fixes the stride at 10
 * iterations; this bench shows the classic trade-off behind that
 * choice: frequent checkpoints cost write time, sparse checkpoints cost
 * re-executed work after a failure).
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/util/table.hh"

using namespace match;
using namespace match::bench;

int
main(int argc, char **argv)
{
    const auto options = BenchOptions::parse(argc, argv);

    std::printf("=== Ablation: checkpoint interval (HPCCG, small, 64 "
                "processes, REINIT-FTI, one failure) ===\n\n");
    util::Table table({"Stride(iters)", "WriteCkpt(s)", "Application(s)",
                       "Recovery(s)", "Total(s)"});
    for (int stride : {2, 5, 10, 20, 40, 80}) {
        core::ExperimentConfig config;
        config.app = "HPCCG";
        config.nprocs = 64;
        config.design = ft::Design::ReinitFti;
        config.injectFailure = true;
        config.runs = options.runs;
        config.seed = options.seed;
        config.ckptStride = stride;
        config.sandboxDir = options.sandboxDir;
        const auto result = core::runExperiment(config);
        table.addRow({std::to_string(stride),
                      util::Table::cell(result.mean.ckptWrite),
                      util::Table::cell(result.mean.application),
                      util::Table::cell(result.mean.recovery),
                      util::Table::cell(result.mean.total())});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("Note: application time includes the work re-executed "
                "since the last checkpoint, which grows with the "
                "stride; write time shrinks with the stride.\n");
    return 0;
}
