/**
 * @file
 * Ablation: ULFM shrinking vs non-shrinking recovery (the paper's
 * Section V-E names replacing global non-shrinking recovery with
 * shrinking/local recovery as the natural extension of MATCH).
 *
 * A synthetic BSP kernel runs under both strategies: shrinking skips
 * the spawn + merge steps (cheaper recovery) but continues on fewer
 * processes (more time per remaining iteration).
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/simmpi/launcher.hh"
#include "src/simmpi/proc.hh"
#include "src/util/table.hh"

using namespace match;
using namespace match::simmpi;

namespace
{

/** Synthetic BSP loop whose per-iteration work is fixed per job and
 *  redistributes over the current world size (shrink-tolerant). */
void
bspMain(Proc &proc, int iters, double flops_per_iter, bool shrinking)
{
    proc.setErrorHandler([&proc, shrinking](Err) {
        CategoryScope recovery(proc, TimeCategory::Recovery);
        proc.revoke();
        if (shrinking)
            proc.shrinkWorld();
        else
            proc.repairWorld();
        throw UlfmRestart{};
    });
    for (;;) {
        try {
            // No checkpointing here: the ablation isolates MPI recovery.
            for (int i = 0; i < iters; ++i) {
                proc.iterationPoint(i);
                proc.compute(flops_per_iter / proc.size());
                proc.allreduce(1.0);
            }
            return;
        } catch (const UlfmRestart &) {
            continue;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = match::bench::BenchOptions::parse(argc, argv);
    (void)options;

    std::printf("=== Ablation: ULFM shrinking vs non-shrinking recovery "
                "(synthetic BSP kernel, one failure) ===\n\n");
    util::Table table({"#Processes", "Strategy", "Recovery(s)",
                       "Application(s)", "Total(s)", "FinalWorldSize"});
    constexpr int iters = 40;
    constexpr double job_flops_per_iter = 64 * 4.0e9; // 64 proc-seconds

    for (int procs : {16, 64, 256}) {
        for (bool shrinking : {false, true}) {
            auto plan = std::make_shared<InjectionPlan>();
            plan->iteration = iters / 2;
            plan->rank = procs / 3;
            JobOptions opts;
            opts.nprocs = procs;
            opts.policy = ErrorPolicy::Return;
            opts.injection = plan;

            int final_size = 0;
            Runtime runtime;
            const JobResult result =
                runtime.run(opts, [&](Proc &proc) {
                    bspMain(proc, iters, job_flops_per_iter, shrinking);
                    if (proc.rank() == 0)
                        final_size = proc.size();
                });

            table.addRow(
                {std::to_string(procs),
                 shrinking ? "shrinking" : "non-shrinking",
                 util::Table::cell(result.breakdown[static_cast<int>(
                     TimeCategory::Recovery)]),
                 util::Table::cell(result.breakdown[static_cast<int>(
                     TimeCategory::Application)]),
                 util::Table::cell(result.total()),
                 std::to_string(final_size)});
        }
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("Shrinking recovery avoids the spawn+merge cost but the "
                "job finishes on P-1 processes, so the same work takes "
                "longer per iteration afterwards.\n");
    return 0;
}
