/**
 * @file
 * Ablation: ULFM local-FORWARD recovery vs global-restart recovery
 * (paper Section V-E: "the ULFM global non-shrinking recovery can be
 * replaced with the ULFM local forward recovery").
 *
 * Workload: a master/worker task farm — the natural fit for forward
 * recovery. Under local-forward, a worker failure shrinks the world and
 * the master simply reassigns the lost tasks: no rollback, no
 * checkpoint data needed. Under global restart (Reinit + FTI), the
 * whole job rolls back to the master's last checkpointed bookkeeping.
 */

#include <cstdio>
#include <unistd.h>
#include <vector>

#include "bench/common.hh"
#include "src/ft/design.hh"
#include "src/fti/fti.hh"
#include "src/simmpi/launcher.hh"
#include "src/simmpi/proc.hh"
#include "src/util/logging.hh"
#include "src/util/table.hh"

using namespace match;
using namespace match::simmpi;

namespace
{

constexpr Tag tagTask = 1;
constexpr Tag tagDone = 2;
constexpr Tag tagStop = 3;
constexpr double taskFlops = 4.0e8; // ~0.1 s of work per task

/**
 * Master/worker farm with ULFM local-forward recovery. The master's
 * bookkeeping lives OUTSIDE the restart scope, so after a shrink it
 * continues forward, reassigning only unfinished tasks.
 */
double
runLocalForward(int procs, int tasks, int fail_task, Rank fail_rank)
{
    auto plan = std::make_shared<InjectionPlan>();
    plan->iteration = fail_task;
    plan->rank = fail_rank;
    JobOptions opts;
    opts.nprocs = procs;
    opts.policy = ErrorPolicy::Return;
    opts.injection = plan;

    double total = 0.0;
    Runtime runtime;
    const JobResult result = runtime.run(opts, [&](Proc &proc) {
        proc.setErrorHandler([&proc](Err) {
            CategoryScope recovery(proc, TimeCategory::Recovery);
            proc.revoke();
            proc.shrinkWorld(); // local repair: survivors only
            throw UlfmRestart{};
        });

        if (proc.globalIndex() == 0) {
            // ---- master: state survives restarts (forward recovery).
            std::vector<double> results(tasks, 0.0);
            std::vector<bool> done(tasks, false);
            for (;;) {
                try {
                    // (Re)assign the unfinished tasks round-robin over
                    // the CURRENT world's workers until all are done.
                    // Duplicate DONEs (a straggler that computed through
                    // the failure) are harmless: the next pass reassigns
                    // only what is still missing.
                    for (;;) {
                        const int workers = proc.size() - 1;
                        int assigned = 0;
                        std::vector<int> inflight;
                        for (int t = 0; t < tasks; ++t) {
                            if (done[t])
                                continue;
                            const int w = 1 + (assigned++ % workers);
                            proc.send(w, tagTask, &t, sizeof(t));
                            inflight.push_back(t);
                        }
                        if (inflight.empty())
                            break;
                        for (std::size_t i = 0; i < inflight.size();
                             ++i) {
                            double payload[2];
                            proc.recv(anySource, tagDone, payload,
                                      sizeof(payload));
                            const int t = static_cast<int>(payload[0]);
                            results[t] = payload[1];
                            done[t] = true;
                        }
                    }
                    const int stop = 1;
                    for (int w = 1; w < proc.size(); ++w)
                        proc.send(w, tagStop, &stop, sizeof(stop));
                    break;
                } catch (const UlfmRestart &) {
                    continue; // forward: keep `done`, reassign the rest
                }
            }
            for (double r : results)
                total += r;
        } else {
            // ---- worker: serve tasks until the STOP message.
            for (;;) {
                try {
                    for (;;) {
                        int task = -1;
                        const RecvStatus status =
                            proc.recv(0, anyTag, &task, sizeof(task));
                        if (status.tag == tagStop)
                            break;
                        proc.iterationPoint(task); // injection site
                        proc.compute(taskFlops);
                        double payload[2] = {static_cast<double>(task),
                                             task + 0.5};
                        proc.send(0, tagDone, payload, sizeof(payload));
                    }
                    break;
                } catch (const UlfmRestart &) {
                    continue;
                }
            }
        }
    });
    const double expect = tasks * (tasks - 1) / 2.0 + tasks * 0.5;
    if (total != expect)
        util::warn("task farm result mismatch: %.1f vs %.1f", total,
                   expect);
    return result.makespan;
}

/** The same farm under global-restart recovery (Reinit + FTI). */
double
runGlobalRestart(const std::string &sandbox_dir, int procs, int tasks,
                 int fail_task, Rank fail_rank)
{
    auto plan = std::make_shared<InjectionPlan>();
    plan->iteration = fail_task;
    plan->rank = fail_rank;
    JobOptions opts;
    opts.nprocs = procs;
    opts.policy = ErrorPolicy::Reinit;
    opts.injection = plan;

    fti::FtiConfig fcfg;
    fcfg.ckptDir = sandbox_dir;
    // Pid-qualified like core::execId: two processes sharing the
    // sandbox root must never purge each other's checkpoints.
    fcfg.execId = "localfwd-global-p" + std::to_string(procs) + "-t" +
                  std::to_string(tasks) + "-f" +
                  std::to_string(fail_task) + "r" +
                  std::to_string(fail_rank) + "-" +
                  std::to_string(::getpid());
    fti::Fti::purge(fcfg);

    Runtime runtime;
    const JobResult result = runtime.runReinit(opts, [&](Proc &proc,
                                                         ReinitState) {
        // Every rank processes a static slice of the tasks; the loop
        // counter is checkpointed so the global restart resumes.
        fti::Fti fti(proc, fcfg);
        int iter = 0;
        fti.protect(0, &iter, sizeof(iter));
        const int per_rank = (tasks + proc.size() - 1) / proc.size();
        for (; iter < per_rank; ++iter) {
            proc.iterationPoint(iter * proc.size() + proc.rank());
            if (fti.status() != 0)
                fti.recover();
            if (iter > 0 && iter % 10 == 0)
                fti.checkpoint(iter / 10);
            proc.compute(taskFlops);
            proc.allreduce(1.0); // progress heartbeat (BSP-ish)
        }
        fti.finalize();
    });
    fti::Fti::purge(fcfg);
    return result.makespan;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = match::bench::BenchOptions::parse(argc, argv);

    std::printf("=== Ablation: ULFM local-forward vs global-restart "
                "recovery (task farm, one worker failure) ===\n\n");
    util::Table table({"#Processes", "#Tasks", "LocalForward(s)",
                       "GlobalRestart(s)", "Speedup"});
    for (int procs : {8, 16, 32}) {
        const int tasks = procs * 8;
        const int fail_task = tasks / 3;
        const Rank fail_rank = procs / 2;
        const double fwd =
            runLocalForward(procs, tasks, fail_task, fail_rank);
        const double global = runGlobalRestart(
            options.sandboxDir, procs, tasks, fail_task, fail_rank);
        table.addRow({std::to_string(procs), std::to_string(tasks),
                      util::Table::cell(fwd),
                      util::Table::cell(global),
                      util::Table::cell(global / fwd, 2) + "x"});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("Trade-off, not a winner: local-forward recovery needs "
                "no checkpoints and no rollback (only the lost tasks "
                "are redone on P-1 processes), but pays ULFM's repair "
                "and background overhead and the farm's master "
                "serialization; global restart redoes at most one "
                "checkpoint stride of everyone's work. Which side wins "
                "depends on task granularity, stride, and the ULFM "
                "overhead — exactly the kind of question MATCH is "
                "built to answer (paper Sec. V-E).\n");
    return 0;
}
