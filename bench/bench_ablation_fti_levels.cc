/**
 * @file
 * Ablation: FTI checkpoint levels L1-L4 (the paper evaluates L1 only
 * and defers the level comparison to the FTI paper; this bench
 * regenerates that comparison on a MATCH workload).
 *
 * Expected shape: write time L1 < L2 < L3 < L4; read (recovery) time in
 * milliseconds for local levels.
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/util/table.hh"

using namespace match;
using namespace match::bench;

int
main(int argc, char **argv)
{
    const auto options = BenchOptions::parse(argc, argv);

    std::printf("=== Ablation: FTI checkpoint levels (HPCCG, small, 64 "
                "processes, REINIT-FTI) ===\n\n");
    util::Table table({"Level", "Storage path", "WriteCkpt(s)",
                       "Application(s)", "Total(s)"});
    const char *paths[] = {
        "", "node-local ramfs", "local + partner copy",
        "local + Reed-Solomon group", "parallel FS (differential)"};
    for (int level = 1; level <= 4; ++level) {
        core::ExperimentConfig config;
        config.app = "HPCCG";
        config.nprocs = 64;
        config.design = ft::Design::ReinitFti;
        config.runs = options.runs;
        config.seed = options.seed;
        config.ckptLevel = level;
        config.sandboxDir = options.sandboxDir;
        const auto result = core::runExperiment(config);
        table.addRow({"L" + std::to_string(level), paths[level],
                      util::Table::cell(result.mean.ckptWrite),
                      util::Table::cell(result.mean.application),
                      util::Table::cell(result.mean.total())});
    }
    std::printf("%s\n", table.toString().c_str());
    return 0;
}
