/**
 * @file
 * Ablation: FTI checkpoint levels L1-L4 (the paper evaluates L1 only
 * and defers the level comparison to the FTI paper; this bench
 * regenerates that comparison on a MATCH workload).
 *
 * Expected shape: write time L1 < L2 < L3 for the rank-serializing
 * levels; L4 drops back to ~L1 because the PFS flush is drained — the
 * rank pays burst-buffer staging and the streaming overlaps compute on
 * the drain channel (any unhidden remainder surfaces at finalize).
 * Read (recovery) time stays in milliseconds for local levels.
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/util/table.hh"

using namespace match;
using namespace match::bench;

int
main(int argc, char **argv)
{
    const auto options = BenchOptions::parse(argc, argv);

    std::printf("=== Ablation: FTI checkpoint levels (HPCCG, small, 64 "
                "processes, REINIT-FTI) ===\n\n");
    core::GridSpec spec = options.baseSpec();
    spec.apps = {"HPCCG"};
    spec.scales = {64};
    spec.designs = {ft::Design::ReinitFti};
    spec.ckptLevels = {1, 2, 3, 4};
    const auto cells = spec.enumerate();
    core::GridTiming timing;
    const auto results = options.makeRunner().run(cells, &timing);

    util::Table table({"Level", "Storage path", "WriteCkpt(s)",
                       "Application(s)", "Total(s)"});
    const char *paths[] = {
        "", "node-local ramfs", "local + partner copy",
        "local + Reed-Solomon group",
        "parallel FS (differential, drained)"};
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const ft::Breakdown &mean = results[i].mean;
        table.addRow({"L" + std::to_string(cells[i].ckptLevel),
                      paths[cells[i].ckptLevel],
                      util::Table::cell(mean.ckptWrite),
                      util::Table::cell(mean.application),
                      util::Table::cell(mean.total())});
    }
    std::printf("%s\n", table.toString().c_str());
    return gridExitCode(options, reportCellFailures(timing));
}
