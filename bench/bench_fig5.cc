/**
 * @file
 * Reproduces Figure 5: execution-time breakdown (application + write
 * checkpoints) per design across scaling sizes, with NO process
 * failures.
 *
 * Expected shape (paper Sec. V-C): ULFM-FTI performs worst and its gap
 * grows with the process count; RESTART-FTI and REINIT-FTI are close;
 * checkpoint-write time grows modestly with scale.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace match::bench;
    return figureMain({"Figure 5", "fig5", Sweep::ScalingSizes,
                       /*inject=*/false, Report::Breakdown},
                      argc, argv);
}
