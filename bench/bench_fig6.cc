/**
 * @file
 * Reproduces Figure 6: execution-time breakdown (application + write
 * checkpoints + recovery) per design across scaling sizes, recovering
 * from ONE injected process failure.
 *
 * Expected shape (paper Sec. V-C): REINIT-FTI achieves the best total;
 * ULFM recovery grows with scale; reading checkpoints is milliseconds
 * (reported by bench_summary, excluded from the stacked bars as in the
 * paper).
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace match::bench;
    return figureMain({"Figure 6", "fig6", Sweep::ScalingSizes,
                       /*inject=*/true, Report::Breakdown},
                      argc, argv);
}
