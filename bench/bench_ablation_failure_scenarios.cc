/**
 * @file
 * Ablation: the failure-scenario engine. The paper's methodology
 * (Section V-B) injects exactly one uniformly random process failure
 * per run; the designs it compares are exactly the ones whose rankings
 * move under richer failure processes. This bench sweeps the scenario
 * axes the engine adds:
 *
 *  - failure models: single (paper baseline), independent-exponential
 *    multi-failure, node/rack-correlated cascades, and a trace replay
 *    round-tripped through the on-disk format (serialize -> parse ->
 *    file -> replay must be bit-identical to the generated schedule);
 *  - silent data corruption: correlated crashes with half the events
 *    demoted to checkpoint corruption, detected at recovery by CRC32C
 *    and survived by falling back to an older checkpoint;
 *  - SDC verification overhead: the same cell with and without
 *    --sdc-checks (plus a periodic scrub), no corruption injected;
 *  - burst-buffer capacity pressure: L4 checkpoints at a dense stride
 *    under a shrinking --drain-capacity, showing the priced admission
 *    stalls grow as the buffer shrinks;
 *  - storage-tier faults: the same injected cell swept over the
 *    storage-fault engine (off, transient faults the retry policy
 *    rides out, a persistent PFS outage survived by L4->L3
 *    degradation), with the process-global fault counters per
 *    scenario, plus a fault-trace round-trip (generated plan ->
 *    serialize -> file -> replay must be bit-identical).
 *
 * Writes BENCH_ablation_failure_scenarios.json (per-scenario rows) into
 * --perf-dir for CI's perf-trajectory artifact.
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "src/ft/failure_model.hh"
#include "src/util/logging.hh"
#include "src/util/rng.hh"
#include "src/util/table.hh"

using namespace match;
using namespace match::bench;
using core::ExperimentConfig;

namespace
{

/** One named configuration of the scenario axes. */
struct Scenario
{
    const char *name;
    ft::FailureModelKind model = ft::FailureModelKind::Single;
    double meanFailures = 1.0;
    double cascadeProb = 0.35;
    double corruptFraction = 0.0;
    bool sdcChecks = false;
    int scrubStride = 0;
};

ExperimentConfig
baseCell(const BenchOptions &options)
{
    ExperimentConfig cell;
    cell.app = "HPCCG";
    cell.nprocs = 64;
    cell.runs = options.runs;
    cell.seed = options.seed;
    // Noise off: scenario deltas and the trace-replay identity check
    // must not be smeared by the run-to-run noise model.
    cell.noiseSigma = 0.0;
    cell.sandboxDir = options.sandboxDir;
    cell.storage = options.storage;
    cell.drain = options.drain;
    cell.drainDepth = options.drainDepth;
    cell.injectFailure = true;
    return cell;
}

ExperimentConfig
scenarioCell(const BenchOptions &options, const Scenario &scenario,
             int procs, ft::Design design)
{
    ExperimentConfig cell = baseCell(options);
    cell.nprocs = procs;
    cell.design = design;
    cell.failureModel = scenario.model;
    cell.meanFailures = scenario.meanFailures;
    cell.cascadeProb = scenario.cascadeProb;
    cell.corruptFraction = scenario.corruptFraction;
    cell.sdcChecks = scenario.sdcChecks;
    cell.scrubStride = scenario.scrubStride;
    return cell;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto options = BenchOptions::parse(argc, argv);
    const core::GridRunner runner = options.makeRunner();

    std::printf("=== Ablation: failure-scenario engine "
                "(HPCCG, small) ===\n");
    std::printf("(methodology: %d runs averaged per configuration, "
                "noise off)\n\n",
                options.runs);

    const std::vector<int> scales =
        options.quick ? std::vector<int>{64} : std::vector<int>{64, 512};
    const std::vector<Scenario> scenarios = {
        {"single"},
        {"independent", ft::FailureModelKind::IndependentExp, 3.0},
        {"correlated", ft::FailureModelKind::Correlated, 2.0, 0.5},
        {"correlated+sdc", ft::FailureModelKind::Correlated, 2.0, 0.5,
         /*corruptFraction=*/0.5, /*sdcChecks=*/true,
         /*scrubStride=*/5},
    };

    // One flat cell list for all scenario rows: the grid runner
    // deduplicates and keeps --jobs workers busy across scenarios.
    std::vector<ExperimentConfig> cells;
    for (const Scenario &scenario : scenarios)
        for (int procs : scales)
            for (ft::Design design : ft::allDesigns)
                cells.push_back(
                    scenarioCell(options, scenario, procs, design));
    core::GridTiming timing;
    const std::vector<core::ExperimentResult> results =
        runner.run(cells, &timing);

    struct Row
    {
        const Scenario *scenario;
        const ExperimentConfig *cell;
        const ft::Breakdown *mean;
    };
    std::vector<Row> rows;
    util::Table table({"Scenario", "#Processes", "Design",
                       "Application(s)", "WriteCkpt(s)", "Recovery(s)",
                       "Total(s)", "Recoveries"});
    std::size_t at = 0;
    for (const Scenario &scenario : scenarios) {
        for (int procs : scales) {
            for (ft::Design design : ft::allDesigns) {
                const ft::Breakdown &mean = results[at].mean;
                rows.push_back({&scenario, &cells[at], &mean});
                table.addRow({scenario.name, std::to_string(procs),
                              ft::designName(design),
                              util::Table::cell(mean.application),
                              util::Table::cell(mean.ckptWrite),
                              util::Table::cell(mean.recovery),
                              util::Table::cell(mean.total()),
                              std::to_string(mean.recoveries)});
                ++at;
            }
        }
    }
    std::printf("%s\n", table.toString().c_str());

    // Trace round-trip: generate the correlated schedule exactly the
    // way runExperiment does for run 0, push it through the trace
    // format (text -> parse -> file -> read), and replay it. The
    // replayed cell must reproduce the generated cell bit-for-bit.
    ExperimentConfig generated = scenarioCell(
        options, scenarios[2], scales.front(), ft::Design::ReinitFti);
    generated.runs = 1;
    apps::AppParams params;
    params.input = generated.input;
    params.nprocs = generated.nprocs;
    params.ckptStride = generated.ckptStride;
    const int iters =
        apps::findApp(generated.app).loopIterations(params);
    util::Rng rng(core::cellSeed(generated, 0));
    ft::FailureModelConfig fm;
    fm.kind = generated.failureModel;
    fm.meanFailures = generated.meanFailures;
    fm.cascadeProb = generated.cascadeProb;
    fm.corruptFraction = generated.corruptFraction;
    fm.ranksPerNode =
        static_cast<int>(generated.costParams.ranksPerNode);
    fm.nodesPerRack =
        static_cast<int>(generated.costParams.nodesPerRack);
    const std::vector<ft::FailureEvent> schedule =
        ft::generateSchedule(fm, generated.nprocs, iters, rng);

    std::filesystem::create_directories(options.sandboxDir);
    const std::string trace_path =
        options.sandboxDir + "/ablation-correlated.trace";
    ft::writeTraceFile(trace_path, schedule);
    const std::vector<ft::FailureEvent> replayed =
        ft::readTraceFile(trace_path);
    const bool format_ok =
        replayed == schedule &&
        ft::parseTrace(ft::serializeTrace(schedule)) == schedule;

    ExperimentConfig replay = generated;
    replay.failureModel = ft::FailureModelKind::Trace;
    replay.traceEvents = replayed;
    const ft::Breakdown gen_bd = core::runExperiment(generated).mean;
    const ft::Breakdown rep_bd = core::runExperiment(replay).mean;
    const bool replay_ok = format_ok &&
                           gen_bd.application == rep_bd.application &&
                           gen_bd.ckptWrite == rep_bd.ckptWrite &&
                           gen_bd.ckptRead == rep_bd.ckptRead &&
                           gen_bd.recovery == rep_bd.recovery &&
                           gen_bd.recoveries == rep_bd.recoveries;
    std::printf("trace round-trip: %zu events, format %s, replay %s "
                "(generated total %.6fs, replayed total %.6fs)\n",
                schedule.size(), format_ok ? "identical" : "DIVERGED",
                replay_ok ? "bit-identical" : "DIVERGED",
                gen_bd.total(), rep_bd.total());
    if (!replay_ok)
        util::warn("trace replay diverged from the generated schedule");

    // SDC verification overhead: same cell, checks off vs on, nothing
    // corrupted — the delta is the priced CRC verification and scrub.
    ExperimentConfig plain = scenarioCell(
        options, scenarios[0], scales.front(), ft::Design::ReinitFti);
    ExperimentConfig checked = plain;
    checked.sdcChecks = true;
    checked.scrubStride = 5;
    const double plain_total = core::runExperiment(plain).mean.total();
    const double checked_total =
        core::runExperiment(checked).mean.total();
    const double sdc_overhead_pct =
        plain_total > 0.0 ? 100.0 * (checked_total / plain_total - 1.0)
                          : 0.0;
    std::printf("sdc-checks overhead (single-failure cell, scrub "
                "stride 5): %.6fs -> %.6fs (%+.2f%%)\n",
                plain_total, checked_total, sdc_overhead_pct);

    // Burst-buffer capacity pressure: L4 checkpoints every other
    // iteration so every cell carries flush traffic, with the PFS pipe
    // throttled 100x so a flush outlives the checkpoint interval and
    // staged bytes accumulate. Admission stalls are priced, so total
    // time grows as capacity drops; 0 is the unbounded baseline.
    const std::vector<std::size_t> capacities = {
        0, std::size_t{1} << 30, std::size_t{1} << 26,
        std::size_t{1} << 22, std::size_t{1} << 18};
    std::vector<ExperimentConfig> pressure_cells;
    for (std::size_t capacity : capacities) {
        ExperimentConfig cell = baseCell(options);
        cell.injectFailure = false;
        cell.design = ft::Design::RestartFti;
        cell.ckptLevel = 4;
        cell.ckptStride = 2;
        cell.costParams.ckptL4AggregateBw /= 100.0;
        cell.drainCapacityBytes = capacity;
        pressure_cells.push_back(std::move(cell));
    }
    const std::vector<core::ExperimentResult> pressure =
        runner.run(pressure_cells);
    util::Table pressure_table(
        {"Capacity(bytes)", "WriteCkpt(s)", "Total(s)"});
    for (std::size_t i = 0; i < capacities.size(); ++i) {
        pressure_table.addRow(
            {capacities[i] == 0 ? std::string("unbounded")
                                : std::to_string(capacities[i]),
             util::Table::cell(pressure[i].mean.ckptWrite),
             util::Table::cell(pressure[i].mean.total())});
    }
    std::printf("\n--- L4 burst-buffer capacity pressure (stride 2, "
                "no failures) ---\n%s\n",
                pressure_table.toString().c_str());

    // Storage-tier faults: one injected L4 cell per design, swept over
    // the fault engine. Transient windows (strikes <= retry limit) must
    // complete via priced retries; the persistent PFS outage must
    // complete via L4->L3 degradation and skipped flushes — never a
    // fatal error while a healthy tier remains. Counters are
    // snapshot-diffed per scenario, so each row shows what its grid
    // actually injected and survived.
    struct FaultScenario
    {
        const char *name;
        int windows = 0;
        double pfsBias = 0.75;
        int strikes = 2;
    };
    const std::vector<FaultScenario> fault_scenarios = {
        {"faults-off", 0},
        {"transient", 2, 0.75, 2},
        {"pfs-outage", 3, 1.0, 99},
    };
    struct FaultRow
    {
        const FaultScenario *scenario;
        storage::FaultStats stats;
        std::vector<ExperimentConfig> cells;
        std::vector<core::ExperimentResult> results;
    };
    std::vector<FaultRow> fault_rows;
    util::Table fault_table({"Scenario", "Design", "WriteCkpt(s)",
                             "Recovery(s)", "Total(s)", "Recoveries"});
    for (const FaultScenario &scenario : fault_scenarios) {
        FaultRow row;
        row.scenario = &scenario;
        for (ft::Design design : ft::allDesigns) {
            ExperimentConfig cell = baseCell(options);
            cell.nprocs = scales.front();
            cell.design = design;
            cell.ckptLevel = 4;
            cell.ckptStride = 5;
            cell.storageFaultWindows = scenario.windows;
            cell.storageFaultPfsBias = scenario.pfsBias;
            cell.storageFaultStrikes = scenario.strikes;
            row.cells.push_back(std::move(cell));
        }
        const storage::FaultStats before = storage::faultGlobalStats();
        row.results = runner.run(row.cells);
        const storage::FaultStats after = storage::faultGlobalStats();
        row.stats.injectedReadFaults =
            after.injectedReadFaults - before.injectedReadFaults;
        row.stats.injectedWriteFaults =
            after.injectedWriteFaults - before.injectedWriteFaults;
        row.stats.tornWrites = after.tornWrites - before.tornWrites;
        row.stats.enospcHits = after.enospcHits - before.enospcHits;
        row.stats.pricedRetries =
            after.pricedRetries - before.pricedRetries;
        row.stats.latencySpikes =
            after.latencySpikes - before.latencySpikes;
        row.stats.degradedCkpts =
            after.degradedCkpts - before.degradedCkpts;
        row.stats.skippedEpochs =
            after.skippedEpochs - before.skippedEpochs;
        row.stats.failedFlushes =
            after.failedFlushes - before.failedFlushes;
        for (std::size_t i = 0; i < row.cells.size(); ++i) {
            const ft::Breakdown &mean = row.results[i].mean;
            fault_table.addRow(
                {scenario.name, ft::designName(row.cells[i].design),
                 util::Table::cell(mean.ckptWrite),
                 util::Table::cell(mean.recovery),
                 util::Table::cell(mean.total()),
                 std::to_string(mean.recoveries)});
        }
        fault_rows.push_back(std::move(row));
    }
    std::printf("--- Storage-tier faults (L4, stride 5, one injected "
                "process failure) ---\n%s",
                fault_table.toString().c_str());
    for (const FaultRow &row : fault_rows) {
        std::printf("%-12s injected r/w/torn/enospc %llu/%llu/%llu/%llu, "
                    "priced retries %llu, spikes %llu, degraded %llu, "
                    "skipped %llu, failed flushes %llu\n",
                    row.scenario->name,
                    static_cast<unsigned long long>(
                        row.stats.injectedReadFaults),
                    static_cast<unsigned long long>(
                        row.stats.injectedWriteFaults),
                    static_cast<unsigned long long>(row.stats.tornWrites),
                    static_cast<unsigned long long>(row.stats.enospcHits),
                    static_cast<unsigned long long>(
                        row.stats.pricedRetries),
                    static_cast<unsigned long long>(
                        row.stats.latencySpikes),
                    static_cast<unsigned long long>(
                        row.stats.degradedCkpts),
                    static_cast<unsigned long long>(
                        row.stats.skippedEpochs),
                    static_cast<unsigned long long>(
                        row.stats.failedFlushes));
    }

    // Storage-fault trace round-trip, mirroring the failure-trace check
    // above: the plan runExperiment would draw for run 0, pushed
    // through the trace format and replayed verbatim, must reproduce
    // the drawn-plan run bit-for-bit.
    ExperimentConfig fault_gen = baseCell(options);
    fault_gen.nprocs = scales.front();
    fault_gen.design = ft::Design::RestartFti;
    fault_gen.ckptLevel = 4;
    fault_gen.ckptStride = 5;
    fault_gen.runs = 1;
    fault_gen.storageFaultWindows = 3;
    fault_gen.storageFaultStrikes = 2;
    const storage::StorageFaultPlan fault_plan =
        core::storageFaultPlanFor(fault_gen, 0);
    const std::string fault_trace_path =
        options.sandboxDir + "/ablation-storage-faults.trace";
    storage::writeFaultTraceFile(fault_trace_path, fault_plan.windows);
    const std::vector<storage::FaultWindow> fault_replayed =
        storage::readFaultTraceFile(fault_trace_path);
    const bool fault_format_ok =
        fault_replayed == fault_plan.windows &&
        storage::parseFaultTrace(
            storage::serializeFaultTrace(fault_plan.windows)) ==
            fault_plan.windows;
    ExperimentConfig fault_replay = fault_gen;
    fault_replay.storageFaultTrace = fault_replayed;
    const ft::Breakdown fgen_bd = core::runExperiment(fault_gen).mean;
    const ft::Breakdown frep_bd = core::runExperiment(fault_replay).mean;
    const bool fault_replay_ok =
        fault_format_ok && fgen_bd.application == frep_bd.application &&
        fgen_bd.ckptWrite == frep_bd.ckptWrite &&
        fgen_bd.ckptRead == frep_bd.ckptRead &&
        fgen_bd.recovery == frep_bd.recovery &&
        fgen_bd.recoveries == frep_bd.recoveries;
    std::printf("storage-fault trace round-trip: %zu windows, format "
                "%s, replay %s (generated total %.6fs, replayed total "
                "%.6fs)\n\n",
                fault_plan.windows.size(),
                fault_format_ok ? "identical" : "DIVERGED",
                fault_replay_ok ? "bit-identical" : "DIVERGED",
                fgen_bd.total(), frep_bd.total());
    if (!fault_replay_ok)
        util::warn("storage-fault trace replay diverged from the "
                   "generated plan");

    // Perf record: per-scenario rows for CI's trajectory artifact.
    std::filesystem::create_directories(options.perfDir);
    const std::string json_path =
        options.perfDir + "/BENCH_ablation_failure_scenarios.json";
    std::FILE *out = std::fopen(json_path.c_str(), "w");
    if (!out) {
        util::warn("cannot write %s", json_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"ablation_failure_scenarios\",\n"
                 "  \"quick\": %s,\n"
                 "  \"runsPerCell\": %d,\n"
                 "  \"jobs\": %d,\n"
                 "  \"traceRoundTripIdentical\": %s,\n"
                 "  \"traceReplayBitIdentical\": %s,\n"
                 "  \"traceEvents\": %zu,\n"
                 "  \"sdcCheckOverheadPct\": %.4f,\n"
                 "  \"scenarios\": [\n",
                 options.quick ? "true" : "false", options.runs,
                 runner.jobs(), format_ok ? "true" : "false",
                 replay_ok ? "true" : "false", schedule.size(),
                 sdc_overhead_pct);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        std::fprintf(
            out,
            "    {\"scenario\": \"%s\", \"nprocs\": %d, "
            "\"design\": \"%s\", \"application\": %.9f, "
            "\"ckptWrite\": %.9f, \"recovery\": %.9f, "
            "\"total\": %.9f, \"recoveries\": %d, "
            "\"failureFired\": %s}%s\n",
            row.scenario->name, row.cell->nprocs,
            ft::designName(row.cell->design), row.mean->application,
            row.mean->ckptWrite, row.mean->recovery, row.mean->total(),
            row.mean->recoveries,
            row.mean->failureFired ? "true" : "false",
            i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(out, "  ],\n  \"capacityPressure\": [\n");
    for (std::size_t i = 0; i < capacities.size(); ++i) {
        std::fprintf(
            out,
            "    {\"capacityBytes\": %llu, \"ckptWrite\": %.9f, "
            "\"total\": %.9f}%s\n",
            static_cast<unsigned long long>(capacities[i]),
            pressure[i].mean.ckptWrite, pressure[i].mean.total(),
            i + 1 == capacities.size() ? "" : ",");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"storageFaultTraceIdentical\": %s,\n"
                 "  \"storageFaultReplayBitIdentical\": %s,\n"
                 "  \"storageFaultTraceWindows\": %zu,\n"
                 "  \"storageFaults\": [\n",
                 fault_format_ok ? "true" : "false",
                 fault_replay_ok ? "true" : "false",
                 fault_plan.windows.size());
    for (std::size_t i = 0; i < fault_rows.size(); ++i) {
        const FaultRow &row = fault_rows[i];
        double total = 0.0;
        int recoveries = 0;
        for (const core::ExperimentResult &result : row.results) {
            total += result.mean.total();
            recoveries += result.mean.recoveries;
        }
        std::fprintf(
            out,
            "    {\"scenario\": \"%s\", \"windows\": %d, "
            "\"pfsBias\": %.3f, \"strikes\": %d, "
            "\"meanTotalSum\": %.9f, \"recoveries\": %d, "
            "\"injectedReadFaults\": %llu, "
            "\"injectedWriteFaults\": %llu, \"tornWrites\": %llu, "
            "\"enospcHits\": %llu, \"pricedRetries\": %llu, "
            "\"latencySpikes\": %llu, \"degradedCkpts\": %llu, "
            "\"skippedEpochs\": %llu, \"failedFlushes\": %llu}%s\n",
            row.scenario->name, row.scenario->windows,
            row.scenario->pfsBias, row.scenario->strikes, total,
            recoveries,
            static_cast<unsigned long long>(
                row.stats.injectedReadFaults),
            static_cast<unsigned long long>(
                row.stats.injectedWriteFaults),
            static_cast<unsigned long long>(row.stats.tornWrites),
            static_cast<unsigned long long>(row.stats.enospcHits),
            static_cast<unsigned long long>(row.stats.pricedRetries),
            static_cast<unsigned long long>(row.stats.latencySpikes),
            static_cast<unsigned long long>(row.stats.degradedCkpts),
            static_cast<unsigned long long>(row.stats.skippedEpochs),
            static_cast<unsigned long long>(row.stats.failedFlushes),
            i + 1 == fault_rows.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("perf: wrote %s\n", json_path.c_str());
    const int quarantined = reportCellFailures(timing);
    if (!replay_ok || !fault_replay_ok)
        return 1;
    return gridExitCode(options, quarantined);
}
