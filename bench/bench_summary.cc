/**
 * @file
 * Reproduces the paper's headline statistics (Sections I and V):
 *
 *  1. Reinit recovery is ~4x faster than ULFM recovery on average,
 *     and up to 13x faster.
 *  2. Reinit recovery is ~16x faster than Restart on average, and up
 *     to 22x faster.
 *  3. Restart recovery is 2-3x slower than ULFM recovery.
 *  4. Writing checkpoints accounts for ~13% of total execution time.
 *  5. Reading checkpoints is in the order of milliseconds.
 *
 * The statistics are computed over the same grid the paper uses: all
 * apps across the four scaling sizes (small input) and the three input
 * sizes (64 processes), with one injected failure per run. The whole
 * grid (four design/injection variants per cell) executes on the
 * GridRunner worker pool before any statistic is reduced.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.hh"
#include "src/util/stats.hh"
#include "src/util/table.hh"

using namespace match;
using namespace match::bench;
using apps::InputSize;
using core::ExperimentConfig;
using ft::Design;

namespace
{

struct Cell
{
    std::string app;
    InputSize input;
    int procs;
};

/** One concrete cell on top of the shared base spec, so this bench
 *  maps runs/seed/sandbox/cache exactly like the figure benches (and
 *  shares their disk-cached cells). */
ExperimentConfig
makeConfig(const core::GridSpec &base, const Cell &cell, Design design,
           bool inject)
{
    ExperimentConfig config;
    config.app = cell.app;
    config.input = cell.input;
    config.nprocs = cell.procs;
    config.design = design;
    config.injectFailure = inject;
    config.runs = base.runs;
    config.seed = base.seed;
    config.sandboxDir = base.sandboxDir;
    config.cacheDir = base.cacheDir;
    config.costParams = base.costParams;
    config.noiseSigma = base.noiseSigma;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = BenchOptions::parse(argc, argv);

    // The evaluation grid (Table I): scaling sweep + input sweep.
    std::vector<Cell> cells;
    for (const std::string &app : options.apps) {
        const auto &spec = apps::findApp(app);
        for (int procs : spec.scalingSizes) {
            if (options.quick && procs != spec.scalingSizes.front() &&
                procs != spec.scalingSizes.back())
                continue;
            cells.push_back({app, InputSize::Small, procs});
        }
        cells.push_back({app, InputSize::Medium, 64});
        cells.push_back({app, InputSize::Large, 64});
    }

    // Four variants per cell, executed in one parallel grid pass:
    // the three designs with an injected failure plus a clean Restart
    // run for the checkpoint-write share.
    const core::GridSpec base = options.baseSpec();
    std::vector<ExperimentConfig> grid;
    grid.reserve(cells.size() * 4);
    for (const Cell &cell : cells) {
        grid.push_back(makeConfig(base, cell, Design::RestartFti, true));
        grid.push_back(makeConfig(base, cell, Design::ReinitFti, true));
        grid.push_back(makeConfig(base, cell, Design::UlfmFti, true));
        grid.push_back(makeConfig(base, cell, Design::RestartFti, false));
    }
    core::GridTiming timing;
    const auto results = options.makeRunner().run(grid, &timing);

    std::vector<double> ulfm_vs_reinit, restart_vs_reinit,
        restart_vs_ulfm, ckpt_fraction, read_seconds;

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const ft::Breakdown &restart = results[4 * i + 0].mean;
        const ft::Breakdown &reinit = results[4 * i + 1].mean;
        const ft::Breakdown &ulfm = results[4 * i + 2].mean;
        const ft::Breakdown &clean = results[4 * i + 3].mean;
        if (reinit.recovery > 0.0) {
            ulfm_vs_reinit.push_back(ulfm.recovery / reinit.recovery);
            restart_vs_reinit.push_back(restart.recovery /
                                        reinit.recovery);
        }
        if (ulfm.recovery > 0.0)
            restart_vs_ulfm.push_back(restart.recovery / ulfm.recovery);
        read_seconds.push_back(reinit.ckptRead);

        if (clean.total() > 0.0)
            ckpt_fraction.push_back(clean.ckptWrite / clean.total());
    }

    auto maxOf = [](const std::vector<double> &v) {
        return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
    };

    std::printf("=== Headline statistics over %zu grid cells ===\n\n",
                cells.size());
    util::Table table({"Metric", "Paper", "Measured"});
    table.addRow({"ULFM recovery / Reinit recovery (mean)", "4x",
                  util::Table::cell(util::mean(ulfm_vs_reinit), 1) + "x"});
    table.addRow({"ULFM recovery / Reinit recovery (max)", "13x",
                  util::Table::cell(maxOf(ulfm_vs_reinit), 1) + "x"});
    table.addRow({"Restart recovery / Reinit recovery (mean)", "16x",
                  util::Table::cell(util::mean(restart_vs_reinit), 1) +
                      "x"});
    table.addRow({"Restart recovery / Reinit recovery (max)", "22x",
                  util::Table::cell(maxOf(restart_vs_reinit), 1) + "x"});
    table.addRow({"Restart recovery / ULFM recovery (mean)", "2-3x",
                  util::Table::cell(util::mean(restart_vs_ulfm), 1) +
                      "x"});
    table.addRow({"Checkpoint-write share of execution (mean)", "13%",
                  util::Table::cell(100.0 * util::mean(ckpt_fraction), 1) +
                      "%"});
    table.addRow({"Checkpoint read time (mean)", "milliseconds",
                  util::Table::cell(1000.0 * util::mean(read_seconds), 1) +
                      " ms"});
    std::printf("%s\n", table.toString().c_str());
    return gridExitCode(options, reportCellFailures(timing));
}
