/**
 * @file
 * Micro-benchmarks of the Reed-Solomon codec backing FTI L3: encode and
 * reconstruct throughput across group geometries, plus the raw GF(256)
 * mulAdd kernel they are built from. Every bench reports an explicit
 * MB/s counter (per data byte processed) so the table-driven kernel's
 * trajectory is tracked in BENCH_micro_rs.json by CI.
 */

#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "src/fti/rs_codec.hh"
#include "src/util/gf256.hh"
#include "src/util/rng.hh"

using match::fti::RsCodec;

namespace
{

/** Rate counter in decimal megabytes per second of data processed. */
benchmark::Counter
mbPerSec(double bytes_per_iteration)
{
    return benchmark::Counter(bytes_per_iteration / 1e6,
                              benchmark::Counter::kIsIterationInvariantRate);
}

std::vector<std::vector<std::uint8_t>>
makeShards(int k, std::size_t bytes)
{
    match::util::Rng rng(1);
    std::vector<std::vector<std::uint8_t>> shards(k);
    for (auto &shard : shards) {
        shard.resize(bytes);
        for (auto &b : shard)
            b = static_cast<std::uint8_t>(rng.below(256));
    }
    return shards;
}

void
BM_GfMulAdd(benchmark::State &state)
{
    const std::size_t bytes = static_cast<std::size_t>(state.range(0));
    const auto shards = makeShards(2, bytes);
    std::vector<std::uint8_t> y = shards[0];
    std::uint8_t c = 2; // never the XOR fast path
    for (auto _ : state) {
        match::util::gf256::mulAdd(y.data(), shards[1].data(), bytes, c);
        benchmark::DoNotOptimize(y.data());
        c = static_cast<std::uint8_t>(c == 255 ? 2 : c + 1);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes));
    state.counters["MB/s"] = mbPerSec(static_cast<double>(bytes));
}
BENCHMARK(BM_GfMulAdd)->Arg(64 << 10)->Arg(1 << 20);

void
BM_RsEncode(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    const std::size_t bytes = static_cast<std::size_t>(state.range(1));
    const RsCodec codec(k, k);
    const auto shards = makeShards(k, bytes);
    for (auto _ : state) {
        auto parity = codec.encode(shards);
        benchmark::DoNotOptimize(parity);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(k) * bytes);
    state.counters["MB/s"] = mbPerSec(static_cast<double>(k) * bytes);
}
BENCHMARK(BM_RsEncode)
    ->Args({4, 64 << 10})
    ->Args({8, 64 << 10})
    ->Args({4, 1 << 20});

void
BM_RsReconstruct(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    const std::size_t bytes = 64 << 10;
    const RsCodec codec(k, k);
    const auto data = makeShards(k, bytes);
    const auto parity = codec.encode(data);
    // Lose the first k/2 members (data + parity shard each).
    std::vector<std::optional<std::vector<std::uint8_t>>> shards(2 * k);
    for (int i = 0; i < k; ++i) {
        if (i < k / 2)
            continue;
        shards[i] = data[i];
        shards[k + i] = parity[i];
    }
    for (auto _ : state) {
        auto out = codec.reconstruct(shards);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(k) * bytes);
    state.counters["MB/s"] = mbPerSec(static_cast<double>(k) * bytes);
}
BENCHMARK(BM_RsReconstruct)->Arg(4)->Arg(8);

} // namespace

BENCHMARK_MAIN();
