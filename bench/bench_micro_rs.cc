/**
 * @file
 * Micro-benchmarks of the Reed-Solomon codec backing FTI L3: encode and
 * reconstruct throughput across group geometries and stripe sizes, plus
 * the raw GF(256) mulAdd kernel they are built from. Every benchmark
 * runs as two rows — "scalar" (the portable table kernel, forced) and
 * "dispatch" (whatever the runtime CPU dispatch selected, named in the
 * row's label) — so the BENCH_micro_rs JSONs record the SIMD speedup
 * and, via the 4 KiB–4 MiB stripe sweep, the cache cliff per host.
 * Every bench reports an explicit MB/s counter (per data byte
 * processed).
 */

#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "src/fti/rs_codec.hh"
#include "src/util/gf256.hh"
#include "src/util/rng.hh"

using match::fti::RsCodec;
namespace gf = match::util::gf256;

namespace
{

/** Which kernel row a benchmark instance measures. */
enum class Row
{
    Scalar,   ///< forced portable table kernel
    Dispatch, ///< startup CPU dispatch (SIMD when the host supports it)
};

/**
 * Pin the GF(256) kernel for one benchmark run and label the row with
 * the kernel that actually executed (so a JSON from a non-SIMD host is
 * self-describing). Restores startup dispatch on destruction.
 */
class KernelRow
{
  public:
    KernelRow(benchmark::State &state, Row row)
    {
        gf::detail::forceKernels(row == Row::Scalar
                                     ? &gf::detail::scalarKernels()
                                     : nullptr);
        state.SetLabel(gf::kernelName());
    }

    ~KernelRow() { gf::detail::forceKernels(nullptr); }
};

/** Rate counter in decimal megabytes per second of data processed. */
benchmark::Counter
mbPerSec(double bytes_per_iteration)
{
    return benchmark::Counter(bytes_per_iteration / 1e6,
                              benchmark::Counter::kIsIterationInvariantRate);
}

std::vector<std::vector<std::uint8_t>>
makeShards(int k, std::size_t bytes)
{
    match::util::Rng rng(1);
    std::vector<std::vector<std::uint8_t>> shards(k);
    for (auto &shard : shards) {
        shard.resize(bytes);
        for (auto &b : shard)
            b = static_cast<std::uint8_t>(rng.below(256));
    }
    return shards;
}

void
BM_GfMulAdd(benchmark::State &state, Row row)
{
    const KernelRow kernel(state, row);
    const std::size_t bytes = static_cast<std::size_t>(state.range(0));
    const auto shards = makeShards(2, bytes);
    std::vector<std::uint8_t> y = shards[0];
    std::uint8_t c = 2; // never the XOR fast path
    for (auto _ : state) {
        gf::mulAdd(y.data(), shards[1].data(), bytes, c);
        benchmark::DoNotOptimize(y.data());
        c = static_cast<std::uint8_t>(c == 255 ? 2 : c + 1);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes));
    state.counters["MB/s"] = mbPerSec(static_cast<double>(bytes));
}
BENCHMARK_CAPTURE(BM_GfMulAdd, scalar, Row::Scalar)
    ->Arg(64 << 10)
    ->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_GfMulAdd, dispatch, Row::Dispatch)
    ->Arg(64 << 10)
    ->Arg(1 << 20);

void
BM_RsEncode(benchmark::State &state, Row row)
{
    const KernelRow kernel(state, row);
    const int k = static_cast<int>(state.range(0));
    const std::size_t bytes = static_cast<std::size_t>(state.range(1));
    const RsCodec codec(k, k);
    const auto shards = makeShards(k, bytes);
    for (auto _ : state) {
        auto parity = codec.encode(shards);
        benchmark::DoNotOptimize(parity);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(k) * bytes);
    state.counters["MB/s"] = mbPerSec(static_cast<double>(k) * bytes);
}

/** Stripe sweep 4 KiB–4 MiB at the FTI default geometry (k=m=4): the
 *  small sizes sit in L1/L2, the large ones stream from DRAM, so the
 *  per-host cache cliff is visible in the JSON; k=8 probes the wider
 *  geometry at one mid size. */
void
rsEncodeArgs(benchmark::internal::Benchmark *bench)
{
    for (const std::int64_t bytes :
         {4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20})
        bench->Args({4, bytes});
    bench->Args({8, 64 << 10});
}
BENCHMARK_CAPTURE(BM_RsEncode, scalar, Row::Scalar)
    ->Apply(rsEncodeArgs);
BENCHMARK_CAPTURE(BM_RsEncode, dispatch, Row::Dispatch)
    ->Apply(rsEncodeArgs);

void
BM_RsReconstruct(benchmark::State &state, Row row)
{
    const KernelRow kernel(state, row);
    const int k = static_cast<int>(state.range(0));
    const std::size_t bytes = 64 << 10;
    const RsCodec codec(k, k);
    const auto data = makeShards(k, bytes);
    const auto parity = codec.encode(data);
    // Lose the first k/2 members (data + parity shard each).
    std::vector<std::optional<std::vector<std::uint8_t>>> shards(2 * k);
    for (int i = 0; i < k; ++i) {
        if (i < k / 2)
            continue;
        shards[i] = data[i];
        shards[k + i] = parity[i];
    }
    for (auto _ : state) {
        auto out = codec.reconstruct(shards);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(k) * bytes);
    state.counters["MB/s"] = mbPerSec(static_cast<double>(k) * bytes);
}
BENCHMARK_CAPTURE(BM_RsReconstruct, scalar, Row::Scalar)
    ->Arg(4)
    ->Arg(8);
BENCHMARK_CAPTURE(BM_RsReconstruct, dispatch, Row::Dispatch)
    ->Arg(4)
    ->Arg(8);

} // namespace

BENCHMARK_MAIN();
