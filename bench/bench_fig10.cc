/**
 * @file
 * Reproduces Figure 10: MPI recovery time per design across input
 * problem sizes (64 processes, one injected process failure).
 *
 * Expected shape (paper Sec. V-D): ULFM and Reinit recovery times are
 * independent of the input problem size; Restart remains the slowest.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace match::bench;
    return figureMain({"Figure 10", "fig10", Sweep::InputSizes,
                       /*inject=*/true, Report::Recovery},
                      argc, argv);
}
