/**
 * @file
 * Micro-benchmarks of the simulator substrate itself (wall-clock cost,
 * not virtual time): fiber switches, point-to-point messaging,
 * collectives across rank counts. These bound how fast the figure
 * benches can run.
 */

#include <benchmark/benchmark.h>

#include "src/simmpi/fiber.hh"
#include "src/simmpi/proc.hh"
#include "src/simmpi/runtime.hh"

using namespace match::simmpi;

namespace
{

void
BM_FiberSwitch(benchmark::State &state)
{
    bool stop = false;
    Fiber fiber([&stop] {
        while (!stop)
            Fiber::current()->yield();
    });
    for (auto _ : state) {
        fiber.setState(Fiber::State::Runnable);
        fiber.resume();
    }
    stop = true;
    fiber.setState(Fiber::State::Runnable);
    fiber.resume(); // run to completion so the fiber unwinds cleanly
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FiberSwitch);

void
BM_PingPong(benchmark::State &state)
{
    const std::size_t bytes = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = 2;
        runtime.run(opts, [&](Proc &proc) {
            std::vector<std::uint8_t> buf(bytes, 1);
            for (int i = 0; i < 100; ++i) {
                if (proc.rank() == 0) {
                    proc.send(1, 0, buf.data(), buf.size());
                    proc.recv(1, 1, buf.data(), buf.size());
                } else {
                    proc.recv(0, 0, buf.data(), buf.size());
                    proc.send(0, 1, buf.data(), buf.size());
                }
            }
        });
    }
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_PingPong)->Arg(8)->Arg(1 << 10)->Arg(64 << 10);

void
BM_Allreduce(benchmark::State &state)
{
    const int procs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = procs;
        runtime.run(opts, [&](Proc &proc) {
            double acc = proc.rank();
            for (int i = 0; i < 20; ++i)
                acc = proc.allreduce(acc) / procs;
            benchmark::DoNotOptimize(acc);
        });
    }
    state.SetItemsProcessed(state.iterations() * 20 * procs);
}
BENCHMARK(BM_Allreduce)->Arg(8)->Arg(64)->Arg(512);

void
BM_JobSpinUp(benchmark::State &state)
{
    const int procs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = procs;
        runtime.run(opts, [&](Proc &proc) { proc.barrier(); });
    }
    state.SetItemsProcessed(state.iterations() * procs);
}
BENCHMARK(BM_JobSpinUp)->Arg(64)->Arg(512);

} // namespace

BENCHMARK_MAIN();
