/**
 * @file
 * Micro-benchmarks of the simulator substrate itself (wall-clock cost,
 * not virtual time): fiber switches, point-to-point messaging,
 * collectives across rank counts. These bound how fast the figure
 * benches can run.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "src/simmpi/fiber.hh"
#include "src/simmpi/proc.hh"
#include "src/simmpi/runtime.hh"

using namespace match::simmpi;

namespace
{
/** Heap allocations observed process-wide; the messaging and collective
 *  rows report an allocsPerEvent counter over their steady-state window
 *  (expected 0 — the perf guard fails the build otherwise). */
std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t
allocCount()
{
    return g_allocs.load(std::memory_order_relaxed);
}
} // namespace

// GCC's -Wmismatched-new-delete flags the free() inside the replaced
// operator delete; malloc/free is the standard implementation for
// replacement allocation functions, so the warning is a false
// positive here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, static_cast<std::size_t>(align),
                       size ? size : 1) == 0)
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
#pragma GCC diagnostic pop

namespace
{

void
BM_FiberSwitch(benchmark::State &state)
{
    bool stop = false;
    Fiber fiber([&stop] {
        while (!stop)
            Fiber::current()->yield();
    });
    for (auto _ : state) {
        fiber.setState(Fiber::State::Runnable);
        fiber.resume();
    }
    stop = true;
    fiber.setState(Fiber::State::Runnable);
    fiber.resume(); // run to completion so the fiber unwinds cleanly
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FiberSwitch);

void
BM_PingPong(benchmark::State &state)
{
    const std::size_t bytes = static_cast<std::size_t>(state.range(0));
    // Steady-state allocation audit: the first iterations of each job
    // warm the pools (fiber stacks, payloads, message rings); the rest
    // must not touch the heap at all.
    constexpr int kIters = 100, kWarmup = 10;
    std::uint64_t steady_allocs = 0, steady_msgs = 0;
    for (auto _ : state) {
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = 2;
        runtime.run(opts, [&](Proc &proc) {
            std::vector<std::uint8_t> buf(bytes, 1);
            std::uint64_t before = 0;
            for (int i = 0; i < kIters; ++i) {
                if (i == kWarmup && proc.rank() == 0)
                    before = allocCount();
                if (proc.rank() == 0) {
                    proc.send(1, 0, buf.data(), buf.size());
                    proc.recv(1, 1, buf.data(), buf.size());
                } else {
                    proc.recv(0, 0, buf.data(), buf.size());
                    proc.send(0, 1, buf.data(), buf.size());
                }
            }
            // By rank 0's last recv both ranks have sent everything:
            // the delta covers the whole steady window of both fibers.
            if (proc.rank() == 0) {
                steady_allocs += allocCount() - before;
                steady_msgs += 2 * (kIters - kWarmup);
            }
        });
    }
    state.SetItemsProcessed(state.iterations() * 2 * kIters);
    state.counters["allocsPerEvent"] = benchmark::Counter(
        steady_msgs ? static_cast<double>(steady_allocs) /
                          static_cast<double>(steady_msgs)
                    : 0.0);
}
BENCHMARK(BM_PingPong)->Arg(8)->Arg(1 << 10)->Arg(64 << 10);

void
BM_Allreduce(benchmark::State &state)
{
    const int procs = static_cast<int>(state.range(0));
    constexpr int kIters = 20, kWarmup = 4;
    std::uint64_t steady_allocs = 0, steady_colls = 0;
    for (auto _ : state) {
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = procs;
        runtime.run(opts, [&](Proc &proc) {
            double acc = proc.rank();
            std::uint64_t before = 0;
            for (int i = 0; i < kIters; ++i) {
                // Rank 0 enters the allreduce first and leaves it last
                // in the cooperative schedule, so its window brackets
                // every rank's steady-state collectives.
                if (i == kWarmup && proc.rank() == 0)
                    before = allocCount();
                acc = proc.allreduce(acc) / procs;
            }
            benchmark::DoNotOptimize(acc);
            if (proc.rank() == 0) {
                steady_allocs += allocCount() - before;
                steady_colls += kIters - kWarmup;
            }
        });
    }
    state.SetItemsProcessed(state.iterations() * kIters * procs);
    state.counters["allocsPerEvent"] = benchmark::Counter(
        steady_colls ? static_cast<double>(steady_allocs) /
                           static_cast<double>(steady_colls)
                     : 0.0);
}
BENCHMARK(BM_Allreduce)->Arg(8)->Arg(64)->Arg(512);

void
BM_JobSpinUp(benchmark::State &state)
{
    const int procs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Runtime runtime;
        JobOptions opts;
        opts.nprocs = procs;
        runtime.run(opts, [&](Proc &proc) { proc.barrier(); });
    }
    state.SetItemsProcessed(state.iterations() * procs);
}
BENCHMARK(BM_JobSpinUp)->Arg(64)->Arg(512);

} // namespace

BENCHMARK_MAIN();
