/**
 * @file
 * Reproduces Figure 9: execution-time breakdown per design across
 * input problem sizes (64 processes), recovering from ONE injected
 * process failure.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace match::bench;
    return figureMain({"Figure 9", "fig9", Sweep::InputSizes,
                       /*inject=*/true, Report::Breakdown},
                      argc, argv);
}
