/**
 * @file
 * Shared driver for the figure-reproduction benchmarks: option parsing,
 * grid execution, and paper-style table rendering.
 *
 * Every bench binary prints, for each proxy application, the same
 * series the corresponding paper figure plots: one row per
 * (configuration, design) with the stacked-bar components.
 */

#ifndef MATCH_BENCH_COMMON_HH
#define MATCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "src/core/experiment.hh"

namespace match::bench
{

/** Command-line options shared by the figure benches. */
struct BenchOptions
{
    /** Paper methodology: five runs averaged per configuration. */
    int runs = 5;
    /** --quick: 2 runs, endpoints-only scaling sweep (64 and 512). */
    bool quick = false;
    /** --csv DIR: also write one CSV per app into DIR. */
    std::string csvDir;
    /** --apps A,B,...: restrict to a subset of the six apps. */
    std::vector<std::string> apps;
    std::uint64_t seed = 42;
    std::string sandboxDir = "/dev/shm/match-fti-bench";

    static BenchOptions parse(int argc, char **argv);
};

/** Which axis the figure sweeps. */
enum class Sweep
{
    ScalingSizes, ///< Figures 5-7: P in {64,128,256,512}, small input
    InputSizes,   ///< Figures 8-10: input in {S,M,L}, 64 processes
};

/** What the figure reports. */
enum class Report
{
    Breakdown, ///< stacked application/ckpt-write/recovery components
    Recovery,  ///< recovery time only (Figures 7 and 10)
};

/**
 * Run one figure's whole grid and print per-app tables.
 *
 * @param options parsed CLI options
 * @param figure label printed in the header (e.g. "Figure 5")
 * @param sweep scaling-size or input-size sweep
 * @param inject whether a process failure is injected
 * @param report breakdown or recovery-only rows
 */
void runFigure(const BenchOptions &options, const std::string &figure,
               Sweep sweep, bool inject, Report report);

} // namespace match::bench

#endif // MATCH_BENCH_COMMON_HH
