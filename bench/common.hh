/**
 * @file
 * Shared driver for the figure-reproduction benchmarks: option parsing,
 * declarative grid specification, thread-parallel grid execution, and
 * paper-style table rendering.
 *
 * Every bench binary prints, for each proxy application, the same
 * series the corresponding paper figure plots: one row per
 * (configuration, design) with the stacked-bar components. Cells run on
 * a GridRunner worker pool; output is bit-identical for any --jobs
 * value because cells are deterministic and rendered in enumeration
 * order after the parallel phase completes.
 */

#ifndef MATCH_BENCH_COMMON_HH
#define MATCH_BENCH_COMMON_HH

#include <initializer_list>
#include <string>
#include <vector>

#include "src/core/grid.hh"

namespace match::bench
{

/**
 * Reject an enum-ish flag value with an error that lists every valid
 * choice — "unknown X" without the menu makes the user go read the
 * source. Shared by --storage, --drain, --pin and --failure-model.
 */
[[noreturn]] void badChoice(const char *flag, const std::string &got,
                            std::initializer_list<const char *> choices);

/** Command-line options shared by the figure benches. */
struct BenchOptions
{
    /** --runs N: runs averaged per configuration (paper: 5). */
    int runs = 5;
    /** --quick: 2 runs, endpoints-only scaling sweep (64 and 512). */
    bool quick = false;
    /** --csv DIR: also write one CSV per app into DIR. */
    std::string csvDir;
    /** --apps A,B,...: restrict to a subset of the six apps. */
    std::vector<std::string> apps;
    /** --seed S: base RNG seed for the failure sites and noise. */
    std::uint64_t seed = 42;
    /** --sandbox DIR: checkpoint sandbox root; each cell derives a
     *  unique subdirectory from its execution id. */
    std::string sandboxDir = "/dev/shm/match-fti-bench";
    /** --jobs N: grid worker threads (default 0 = hardware
     *  concurrency). Results and printed output are byte-identical
     *  for every value of N; only wall time changes. */
    int jobs = 0;
    /** --storage mem|disk: checkpoint sandbox backend. Results are
     *  identical for either; disk leaves an inspectable sandbox. */
    storage::Kind storage = storage::Kind::Mem;
    /** --drain sync|async: PFS drain execution mode. Results are
     *  identical for either; async overlaps flush I/O with compute. */
    storage::DrainMode drain = storage::DrainMode::Async;
    /** --drain-depth N: flush jobs admitted but not yet drained
     *  (burst-buffer bound); 0 = unbounded. Wall-clock only. */
    int drainDepth = 4;
    /** --pin none|auto|cores: grid worker placement. `auto` pins
     *  workers round-robin across NUMA nodes/cores when every worker
     *  can own one (each worker's blob pool then stays node-local);
     *  results are identical for every mode. */
    core::PinMode pin = core::PinMode::None;

    /// @name Crash-safe execution (wall-clock-only; see bench/RESUME.md).
    /// @{
    /** --cell-timeout SECS|auto: wall-clock watchdog per cell attempt.
     *  0 disables; `auto` derives the deadline from the grid's own
     *  completed-cell p99. Never part of configKey. */
    double cellTimeoutSeconds = 0.0;
    bool autoCellTimeout = false;
    /** --cell-retries N: attempts after the first before a throwing or
     *  timed-out cell is quarantined. */
    int cellRetries = 2;
    /** --resume/--no-resume: journal per-cell status next to the result
     *  cache and resume a killed grid (default on). --no-resume
     *  discards the journal history (the cache itself is untouched). */
    bool resume = true;
    /** --strict: exit nonzero when any cell was quarantined (default:
     *  finish the healthy cells and report). */
    bool strict = false;
    /// @}
    /** --perf: measure grid wall-clock under both backends and under
     *  both drain modes at L4 (cache bypassed) and write
     *  BENCH_<name>.json into perfDir. */
    bool perf = false;
    /** --perf-dir DIR: where BENCH_<name>.json lands (default "."). */
    std::string perfDir = ".";

    /// @name Failure-scenario engine (virtual-result axes).
    /// @{
    /** --failure-model single|independent|correlated|trace. */
    ft::FailureModelKind failureModel = ft::FailureModelKind::Single;
    /** --failure-trace FILE: replay a failure trace (implies
     *  --failure-model trace). */
    std::vector<ft::FailureEvent> traceEvents;
    /** --mean-failures M: expected failures per run for the
     *  independent/correlated models. */
    double meanFailures = 1.0;
    /** --cascade-prob P: correlated model's escalation probability. */
    double cascadeProb = 0.35;
    /** --corrupt-fraction F: fraction of generated failures that are
     *  silent corruptions instead of crashes. */
    double corruptFraction = 0.0;
    /** --sdc-checks: CRC32C-verify checkpoints at recovery. */
    bool sdcChecks = false;
    /** --scrub-stride N: verify the newest checkpoint every N
     *  iterations (0 = never; requires --sdc-checks). */
    int scrubStride = 0;
    /** --drain-capacity BYTES: burst-buffer capacity in staged bytes,
     *  0 = unbounded. Virtual-result knob (priced stalls). */
    std::size_t drainCapacityBytes = 0;
    /** --transform none|delta|compress|delta+compress: checkpoint
     *  data-reduction chain. Virtual-result axis (part of the cell
     *  cache key); none is bit-identical to the pre-transform code. */
    storage::TransformKind transform = storage::TransformKind::None;
    /// @}

    /// @name Storage-fault engine (virtual-result axes; bench/FAULTS.md).
    /// @{
    /** --storage-fault-windows N: per-run fault windows (0 = off). */
    int storageFaultWindows = 0;
    /** --storage-fault-pfs-bias P: probability a window hits the PFS. */
    double storageFaultPfsBias = 0.75;
    /** --storage-fault-mean-epochs N: mean window length in epochs. */
    int storageFaultMeanEpochs = 2;
    /** --storage-fault-strikes N: failing attempts per (window, path)
     *  before the tier heals; > --io-retry-limit is persistent. */
    int storageFaultStrikes = 2;
    /** --storage-fault-trace FILE: replay a fault trace verbatim
     *  (implies one engaged window; see storage::readFaultTraceFile). */
    std::vector<storage::FaultWindow> storageFaultTrace;
    /** --io-retry-limit N: checkpoint clients' bounded retry budget. */
    int ioRetryLimit = 3;
    /// @}

    static BenchOptions parse(int argc, char **argv);

    /** A GridSpec carrying these options' shared fields (apps, runs,
     *  seed, sandbox, cache). Benches set the axes on top of it. */
    core::GridSpec baseSpec() const;

    /** The grid fault-tolerance policy these options describe. */
    core::GridPolicy gridPolicy() const;

    /** A runner carrying jobs, pin mode and the grid policy — the one
     *  constructor every GridRunner bench should use, so the
     *  watchdog/retry/resume flags reach every grid uniformly. */
    core::GridRunner makeRunner() const;
};

/**
 * Print the structured quarantined-cell report (nothing on a healthy
 * grid) and return the number of quarantined cells. Benches accumulate
 * the count across their grids and feed it to gridExitCode.
 */
int reportCellFailures(const core::GridTiming &timing);

/** Process exit code honoring --strict: nonzero iff any cell was
 *  quarantined and strict mode is on. */
int gridExitCode(const BenchOptions &options, int quarantined);

/** Which axis the figure sweeps. */
enum class Sweep
{
    ScalingSizes, ///< Figures 5-7: P in {64,128,256,512}, small input
    InputSizes,   ///< Figures 8-10: input in {S,M,L}, 64 processes
};

/** What the figure reports. */
enum class Report
{
    Breakdown, ///< stacked application/ckpt-write/recovery components
    Recovery,  ///< recovery time only (Figures 7 and 10)
};

/** Declarative description of one figure bench. */
struct FigureDef
{
    const char *figure; ///< label printed in the header ("Figure 5")
    const char *slug;   ///< perf-record name ("fig5" -> BENCH_fig5.json)
    Sweep sweep;        ///< scaling-size or input-size sweep
    bool inject;        ///< whether a process failure is injected
    Report report;      ///< breakdown or recovery-only rows
};

/**
 * Run one figure's whole grid on a worker pool and print per-app
 * tables (and CSVs when requested). Returns the number of quarantined
 * cells (0 on a healthy grid).
 */
int runFigure(const BenchOptions &options, const FigureDef &def);

/** Parse options and run the figure: the figure benches' whole main. */
int figureMain(const FigureDef &def, int argc, char **argv);

} // namespace match::bench

#endif // MATCH_BENCH_COMMON_HH
