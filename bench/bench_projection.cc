/**
 * @file
 * Projection bench: combines MATCH's measured per-design recovery times
 * and checkpoint costs with the Young/Daly model to estimate machine
 * efficiency on the production systems the paper's introduction cites
 * (Sequoia 19.2 h, Blue Waters 6.7 h, Taurus 3.65 h MTBF). This is the
 * "MATCH as a foundation for future fault-tolerance decisions" use case
 * of Section V-E, quantified.
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/core/projection.hh"
#include "src/util/table.hh"

using namespace match;
using namespace match::bench;

int
main(int argc, char **argv)
{
    const auto options = BenchOptions::parse(argc, argv);

    // Measure one representative configuration per design: HPCCG,
    // small input, 512 processes (failures matter most at scale).
    std::printf("=== Projection: measured MATCH quantities x Young/Daly "
                "model (HPCCG, small, 512 processes) ===\n\n");

    core::GridSpec spec = options.baseSpec();
    spec.apps = {"HPCCG"};
    spec.scales = {512};
    spec.injectFailure = true;
    const auto cells = spec.enumerate();
    core::GridTiming timing;
    const auto results = options.makeRunner().run(cells, &timing);

    struct Measured
    {
        ft::Design design;
        double ckptCost;  // seconds per checkpoint
        double recovery;  // seconds per failure
    };
    std::vector<Measured> designs;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        // 149 iterations, stride 10 => 14 checkpoints per run.
        const double per_ckpt = results[i].mean.ckptWrite / 14.0;
        designs.push_back(
            {cells[i].design, per_ckpt, results[i].mean.recovery});
    }

    util::Table table({"Machine", "MTBF", "Design", "Ckpt(s)",
                       "Recovery(s)", "DalyInterval(s)",
                       "Efficiency(%)"});
    for (const auto &machine : core::paperMachines()) {
        for (const auto &m : designs) {
            const double tau =
                core::dalyInterval(m.ckptCost, machine.mtbfSeconds);
            const double eff = core::efficiencyAtOptimum(
                m.ckptCost, m.recovery, machine.mtbfSeconds);
            table.addRow({machine.name,
                          util::Table::cell(machine.mtbfSeconds / 3600.0,
                                            2) +
                              " h",
                          ft::designName(m.design),
                          util::Table::cell(m.ckptCost, 3),
                          util::Table::cell(m.recovery, 2),
                          util::Table::cell(tau, 0),
                          util::Table::cell(100.0 * eff, 3)});
        }
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("Reading: at hours-scale MTBFs all designs run "
                "efficiently, but the ordering (Reinit > ULFM > "
                "Restart) persists and the gap widens as MTBF shrinks "
                "— the paper's motivation for cheap MPI recovery at "
                "exascale failure rates.\n");
    return gridExitCode(options, reportCellFailures(timing));
}
